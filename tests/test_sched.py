"""Tests for the continuous-batching scheduler subsystem (`repro.sched`).

Covers the policy/admission/autoscaler units, the pool active-set and
directed-booking primitives they drive, the layer-boundary hooks the
sharded runtime exposes, and the continuous scheduler end to end:
legacy equivalence on light traffic, join-in-flight under overload,
shed/defer admission, layer-boundary preemption, autoscaler event flow,
and the per-response phase invariant.  Also holds the satellite
regression tests for the micro-batcher edge cases, per-class workload
tagging, and the extended ``ServingReport`` round-trip.
"""

from __future__ import annotations

import json

import numpy as np
import pytest
from conftest import make_tiny_config

from repro.engine.pool import AcceleratorPool
from repro.sched import (
    AdmissionController,
    AdmissionDecision,
    ContinuousScheduler,
    PoolAutoscaler,
    SLOClass,
    SLOPolicy,
)
from repro.serve import (
    SCHEDULERS,
    InferenceRequest,
    InferenceServer,
    MicroBatcher,
    synthesize,
)
from repro.shard import run_sharded

SCALE = 0.15


def tiny_request(**overrides) -> InferenceRequest:
    base = dict(model="GCN", dataset="CO", scale=SCALE, seed=3)
    base.update(overrides)
    return InferenceRequest(**base)


def tiny_server(**overrides) -> InferenceServer:
    base = dict(config=make_tiny_config(), pool_size=1, max_batch_size=4,
                max_wait_s=1e-3)
    base.update(overrides)
    return InferenceServer(**base)


def warm(server: InferenceServer, **req_overrides) -> float:
    """Prime the compile cache; returns the warm 1-request service time."""
    report = server.serve([tiny_request(**req_overrides)])
    resp = report.responses[0]
    return resp.execute_s


# ---------------------------------------------------------------------------
# policy / admission / autoscaler units
# ---------------------------------------------------------------------------


class TestSLOPolicy:
    def test_default_policy_tiers(self):
        policy = SLOPolicy.default()
        inter, bulk = policy.get("interactive"), policy.get("bulk")
        assert inter.priority > bulk.priority
        assert inter.max_wait_s == 0.0 and bulk.max_wait_s is None
        assert inter.overload == "shed" and bulk.overload == "defer"
        assert policy.names == ("interactive", "bulk")

    def test_unknown_class_raises(self):
        with pytest.raises(KeyError, match="unknown SLO class"):
            SLOPolicy.default().get("batch")

    def test_policy_is_hashable_for_engine_memoization(self):
        a = SLOPolicy.default(interactive_target_p99_s=1e-3)
        b = SLOPolicy.default(interactive_target_p99_s=1e-3)
        assert a == b and hash(a) == hash(b)

    @pytest.mark.parametrize("bad", [
        dict(name=""),
        dict(overload="drop"),
        dict(target_p99_s=0.0),
        dict(max_wait_s=-1e-6),
        dict(max_queue_depth=0),
    ])
    def test_class_validation(self, bad):
        kwargs = dict(name="t", priority=0)
        kwargs.update(bad)
        with pytest.raises(ValueError):
            SLOClass(**kwargs)

    def test_duplicate_class_names_rejected(self):
        c = SLOClass(name="x", priority=0)
        with pytest.raises(ValueError, match="duplicate"):
            SLOPolicy(classes=(c, c))

    def test_empty_policy_rejected(self):
        with pytest.raises(ValueError):
            SLOPolicy(classes=())


class TestAdmissionController:
    def make(self, depth=4, overload="defer", factor=4.0):
        policy = SLOPolicy(classes=(
            SLOClass(name="t", priority=0, max_queue_depth=depth,
                     overload=overload),
        ))
        return AdmissionController(policy, hard_limit_factor=factor), \
            policy.get("t")

    def test_admits_below_the_bound(self):
        ctl, cls = self.make(depth=4)
        assert ctl.decide(cls, 3).action == "admit"

    def test_unbounded_class_always_admits(self):
        ctl, cls = self.make(depth=None)
        assert ctl.decide(cls, 10**6).action == "admit"

    def test_shed_class_sheds_at_the_bound(self):
        ctl, cls = self.make(depth=4, overload="shed")
        decision = ctl.decide(cls, 4)
        assert decision.action == "shed" and "bound 4" in decision.reason

    def test_defer_class_defers_then_hard_sheds(self):
        ctl, cls = self.make(depth=4, factor=4.0)
        assert ctl.decide(cls, 4).action == "defer"
        assert ctl.decide(cls, 15).action == "defer"
        hard = ctl.decide(cls, 16)  # ceil(4 * 4.0)
        assert hard.action == "shed" and "hard limit" in hard.reason

    def test_counters_and_snapshot(self):
        ctl, cls = self.make(depth=2)
        for depth in (0, 2, 100):
            ctl.decide(cls, depth)
        assert ctl.snapshot() == {"t": {"admit": 1, "defer": 1, "shed": 1}}
        ctl.reset()
        assert ctl.snapshot() == {"t": {"admit": 0, "defer": 0, "shed": 0}}

    def test_low_watermark_is_half_the_bound(self):
        ctl, cls = self.make(depth=5)
        assert ctl.low_watermark(cls) == 2
        ctl1, cls1 = self.make(depth=1)
        assert ctl1.low_watermark(cls1) == 1
        ctln, clsn = self.make(depth=None)
        assert ctln.low_watermark(clsn) is None

    def test_invalid_hard_limit_factor(self):
        with pytest.raises(ValueError):
            AdmissionController(SLOPolicy.default(), hard_limit_factor=0.5)

    def test_invalid_action_rejected(self):
        with pytest.raises(ValueError):
            AdmissionDecision("drop")


class TestPoolAutoscaler:
    def test_grows_past_the_queue_threshold(self):
        a = PoolAutoscaler(scale_up_queue_per_device=4.0)
        got = a.propose(0.0, active=1, queue_depth=5, busy_devices=1,
                        pool_devices=4)
        assert got is not None and got[0] == 2

    def test_holds_inside_the_dead_band(self):
        a = PoolAutoscaler(scale_up_queue_per_device=4.0,
                           scale_down_queue_per_device=1.0)
        # 2 active: shrink needs depth < 1, grow needs depth > 8
        assert a.propose(0.0, active=2, queue_depth=3, busy_devices=1,
                         pool_devices=4) is None

    def test_shrinks_only_with_an_idle_device(self):
        a = PoolAutoscaler()
        assert a.propose(0.0, active=2, queue_depth=0, busy_devices=2,
                         pool_devices=4) is None
        got = a.propose(0.0, active=2, queue_depth=0, busy_devices=1,
                        pool_devices=4)
        assert got is not None and got[0] == 1

    def test_respects_min_and_max_devices(self):
        a = PoolAutoscaler(min_devices=2, max_devices=3)
        assert a.propose(0.0, active=2, queue_depth=0, busy_devices=0,
                         pool_devices=4) is None
        got = a.propose(0.0, active=3, queue_depth=100, busy_devices=3,
                        pool_devices=4)
        assert got is None  # already at max_devices

    def test_cooldown_gates_consecutive_changes(self):
        a = PoolAutoscaler(cooldown_s=1.0)
        a.commit(0.0, from_devices=1, to_devices=2, reason="grow",
                 queue_depth=9, busy_devices=1)
        assert a.propose(0.5, active=2, queue_depth=100, busy_devices=2,
                         pool_devices=4) is None
        assert a.propose(1.5, active=2, queue_depth=100, busy_devices=2,
                         pool_devices=4) is not None

    def test_commit_records_events_in_order(self):
        a = PoolAutoscaler()
        a.commit(0.0, from_devices=1, to_devices=2, reason="grow",
                 queue_depth=9, busy_devices=1)
        a.commit(1.0, from_devices=2, to_devices=1, reason="drain",
                 queue_depth=0, busy_devices=0)
        assert [e.to_dict()["to_devices"] for e in a.events] == [2, 1]
        a.reset()
        assert a.events == []

    def test_dead_band_is_required(self):
        with pytest.raises(ValueError, match="dead band"):
            PoolAutoscaler(scale_up_queue_per_device=1.0,
                           scale_down_queue_per_device=1.0)

    @pytest.mark.parametrize("bad", [
        dict(min_devices=0),
        dict(min_devices=3, max_devices=2),
        dict(cooldown_s=-1.0),
        dict(provision_delay_s=-1.0),
        dict(step=0),
    ])
    def test_knob_validation(self, bad):
        with pytest.raises(ValueError):
            PoolAutoscaler(**bad)


# ---------------------------------------------------------------------------
# pool active set + directed booking
# ---------------------------------------------------------------------------


class TestPoolActiveSet:
    def test_defaults_to_all_devices_active(self):
        pool = AcceleratorPool(make_tiny_config(), num_devices=3)
        assert pool.num_active == 3

    def test_set_active_bounds(self):
        pool = AcceleratorPool(make_tiny_config(), num_devices=3)
        for bad in (0, 4):
            with pytest.raises(ValueError):
                pool.set_active(bad)

    def test_parked_devices_do_not_take_new_work(self):
        pool = AcceleratorPool(make_tiny_config(), num_devices=3)
        pool.set_active(1)
        pool.available[0] = 5.0  # device 0 busy; 1 and 2 idle but parked
        assert pool.peek_device(0.0) == 0

    def test_grow_charges_the_provision_delay(self):
        pool = AcceleratorPool(make_tiny_config(), num_devices=2)
        pool.set_active(1)
        pool.set_active(2, now=1.0, provision_delay_s=0.5)
        assert pool.available[1] == pytest.approx(1.5)
        # ... but never rewinds an already-later availability
        pool.set_active(1)
        pool.available[1] = 9.0
        pool.set_active(2, now=1.0, provision_delay_s=0.5)
        assert pool.available[1] == pytest.approx(9.0)

    def test_submit_on_books_the_named_device(self):
        pool = AcceleratorPool(make_tiny_config(), num_devices=2)
        start, end = pool.submit_on(1, 2.0, 0.5, batch_id=7)
        assert (start, end) == (0.5, 2.5)
        assert pool.available[1] == pytest.approx(2.5)
        assert pool.busy[1] == pytest.approx(2.0)
        assert pool.events[-1].device == 1

    def test_submit_on_parked_device_drains(self):
        pool = AcceleratorPool(make_tiny_config(), num_devices=2)
        pool.set_active(1)
        start, end = pool.submit_on(1, 1.0, 0.0)
        assert (start, end) == (0.0, 1.0)

    def test_submit_on_busy_override(self):
        pool = AcceleratorPool(make_tiny_config(), num_devices=1)
        pool.submit_on(0, 2.0, 0.0, busy_s=0.5)
        assert pool.busy[0] == pytest.approx(0.5)
        assert pool.available[0] == pytest.approx(2.0)

    def test_submit_on_validates_device_and_service(self):
        pool = AcceleratorPool(make_tiny_config(), num_devices=1)
        with pytest.raises(ValueError):
            pool.submit_on(1, 1.0, 0.0)
        with pytest.raises(ValueError):
            pool.submit_on(0, -1.0, 0.0)

    def test_submit_group_limited_to_the_active_set(self):
        pool = AcceleratorPool(make_tiny_config(), num_devices=3)
        pool.set_active(2)
        with pytest.raises(ValueError, match="active"):
            pool.submit_group(1.0, 3, 0.0)
        devices, _, _ = pool.submit_group(1.0, 2, 0.0)
        assert devices == [0, 1]

    def test_reset_reactivates_every_device(self):
        pool = AcceleratorPool(make_tiny_config(), num_devices=3)
        pool.set_active(1)
        pool.reset()
        assert pool.num_active == 3


# ---------------------------------------------------------------------------
# layer boundaries exposed by the sharded runtime
# ---------------------------------------------------------------------------


class TestLayerBoundaries:
    @pytest.fixture(scope="class")
    def sharded(self):
        from repro import Compiler, build_model, init_weights, load_dataset
        cfg = make_tiny_config()
        data = load_dataset("CO", scale=SCALE, seed=3)
        model = build_model("GCN", data.num_features, data.hidden_dim,
                            data.num_classes)
        program = Compiler(cfg).compile(model, data,
                                        init_weights(model, seed=3))
        return program

    def test_boundaries_span_zero_to_latency(self, sharded):
        res = run_sharded(sharded, 2)
        bounds = res.layer_boundaries_s()
        assert bounds[0] == 0.0
        assert bounds[-1] == pytest.approx(res.latency_s)
        assert len(bounds) == len(res.kernel_stats) + 1
        assert bounds == sorted(bounds)

    def test_on_layer_hook_fires_once_per_kernel(self, sharded):
        calls = []
        res = run_sharded(
            sharded, 2,
            on_layer=lambda kid, n, t, b: calls.append((kid, n, t, b)),
        )
        assert len(calls) == len(res.kernel_stats)
        # t is the boundary at which the layer *ends*; monotone and the
        # barrier increments sum to the run latency
        times = [t for _, _, t, _ in calls]
        assert times == sorted(times)
        assert sum(b for _, _, _, b in calls) == pytest.approx(res.latency_s)


# ---------------------------------------------------------------------------
# the continuous scheduler end to end
# ---------------------------------------------------------------------------


def strip_wallclock(d: dict) -> dict:
    """Report dict minus host-wall-clock fields (compile is measured on
    the host clock, so it varies run to run)."""
    d = dict(d)
    for key in ("compile_saved_s", "compile_s"):
        d.pop(key, None)
    metrics = d.get("metrics")
    if metrics:
        metrics = {k: dict(v) if isinstance(v, dict) else v
                   for k, v in metrics.items()}
        for key in ("serve.compile_s", "serve.compile_saved_s"):
            metrics.get("counters", {}).pop(key, None)
        metrics.pop("histograms", None)
        d["metrics"] = metrics
    return d


class TestContinuousServe:
    def test_scheduler_name_is_validated(self):
        assert SCHEDULERS == ("legacy", "continuous")
        with pytest.raises(ValueError, match="scheduler"):
            tiny_server(scheduler="bogus")

    def test_admission_requires_continuous(self):
        policy = SLOPolicy.default(bulk_queue_depth=4)
        with pytest.raises(ValueError, match="continuous"):
            tiny_server(admission=AdmissionController(policy))
        with pytest.raises(ValueError, match="continuous"):
            tiny_server(autoscaler=PoolAutoscaler())
        # a policy alone is fine on legacy: it sets goodput targets
        tiny_server(slo_policy=policy)

    def test_explicit_legacy_is_bit_exact_with_the_default(self):
        requests = synthesize(
            num_requests=12, arrival="poisson", rate_rps=5e4,
            models=("GCN",), datasets=("CO",), scale=SCALE,
            class_skew=0.5, seed=11,
        )
        a, b = tiny_server(), tiny_server(scheduler="legacy")
        # warm with the stream itself: the compared sweeps are then all
        # cache hits, so no host-clock compile time leaks into them
        a.serve([r for r in requests]), b.serve([r for r in requests])
        ra = a.serve([r for r in requests])
        rb = b.serve([r for r in requests])
        assert strip_wallclock(ra.to_dict()) == strip_wallclock(rb.to_dict())

    def test_continuous_matches_legacy_outputs_on_light_traffic(self):
        requests = synthesize(
            num_requests=8, arrival="steady", rate_rps=1e3,
            models=("GCN",), datasets=("CO",), scale=SCALE, seed=5,
        )
        legacy, cont = tiny_server(), tiny_server(scheduler="continuous")
        # synthesize stamps the workload seed onto each request, so warm
        # the same (model, dataset, scale, seed) program the stream uses
        warm(legacy, seed=5), warm(cont, seed=5)
        rl = legacy.serve([r for r in requests])
        rc = cont.serve([r for r in requests])
        assert rc.scheduler == "continuous"
        lout = {r.request_id: r.output for r in rl.responses}
        assert len(rc.responses) == len(rl.responses)
        for resp in rc.responses:
            assert np.array_equal(resp.output, lout[resp.request_id])

    def test_joins_share_an_inflight_execution(self):
        server = tiny_server(max_wait_s=0.0)
        exec_s = warm(server)
        # founder at t=0; followers arrive mid-execution and must board
        # at layer boundaries instead of founding new batches
        requests = [tiny_request(arrival_s=0.0)] + [
            tiny_request(arrival_s=frac * exec_s)
            for frac in (0.2, 0.4, 0.6)
        ]
        sched = ContinuousScheduler(server)
        report = sched.run(requests)
        assert report.joined_requests == 3
        assert report.num_batches == 1
        joined = [r for r in report.responses if r.joined]
        assert len(joined) == 3
        for resp in joined:
            assert resp.barrier_s == 0.0
            # a joiner never finishes after the execution it boarded
            assert resp.finish_s == pytest.approx(
                max(r.finish_s for r in report.responses))

    def test_overload_goodput_beats_legacy(self):
        server_l = tiny_server(pool_size=2)
        server_c = tiny_server(pool_size=2, scheduler="continuous")
        exec_s = warm(server_l, seed=13)
        warm(server_c, seed=13)
        requests = synthesize(
            num_requests=40, arrival="poisson",
            rate_rps=10.0 / exec_s,  # ~10x one device's capacity
            models=("GCN",), datasets=("CO",), scale=SCALE,
            class_skew=0.3, seed=13,
        )
        rl = server_l.serve([r for r in requests])
        rc = server_c.serve([r for r in requests])
        assert rc.joined_requests > 0
        assert rc.throughput_rps > rl.throughput_rps
        assert rc.makespan_s < rl.makespan_s

    def test_phase_invariant_holds_for_every_response(self):
        server = tiny_server(pool_size=2, scheduler="continuous")
        exec_s = warm(server)  # stream seed below matches the default (3)
        requests = synthesize(
            num_requests=20, arrival="bursty", rate_rps=6.0 / exec_s,
            models=("GCN",), datasets=("CO",), scale=SCALE,
            class_skew=0.4, seed=3,
        )
        report = server.serve(requests)
        for resp in report.responses:
            assert resp.latency_s == pytest.approx(
                resp.queue_s + resp.execute_s + resp.barrier_s, abs=1e-12)

    def test_report_carries_scheduler_accounting(self):
        server = tiny_server(scheduler="continuous")
        warm(server)
        report = server.serve([tiny_request(arrival_s=0.0)])
        assert report.scheduler == "continuous"
        assert report.active_devices >= 1
        counters = report.metrics["counters"]
        assert counters["serve.sched.executions"] == 1.0
        assert "serve.sched.joined" in counters

    def test_sharded_requests_flow_through_the_continuous_path(self):
        server = tiny_server(pool_size=2, scheduler="continuous",
                             max_wait_s=0.0)
        legacy = tiny_server(pool_size=2)
        warm(server, shards=2), warm(legacy, shards=2)
        reqs = [tiny_request(shards=2, arrival_s=0.0)]
        rc = server.serve([r for r in reqs])
        rl = legacy.serve([r for r in reqs])
        assert np.array_equal(rc.responses[0].output, rl.responses[0].output)
        assert rc.responses[0].shards == 2
        assert rc.responses[0].barrier_s == pytest.approx(
            rl.responses[0].barrier_s)


class TestAdmissionIntegration:
    def test_interactive_overload_sheds(self):
        policy = SLOPolicy.default(interactive_queue_depth=2)
        server = tiny_server(
            scheduler="continuous", slo_policy=policy,
            admission=AdmissionController(policy), max_wait_s=0.0,
        )
        exec_s = warm(server)
        warm(server, seed=4)
        # near-simultaneous burst over two programs: joins can only soak
        # up the same-program arrivals, the rest pile past the depth-2
        # interactive bound and shed (joins themselves are exempt)
        requests = [
            tiny_request(slo="interactive", seed=3 + (i % 2),
                         arrival_s=i * exec_s * 1e-3)
            for i in range(12)
        ]
        report = server.serve(requests)
        assert report.shed_requests > 0
        assert len(report.responses) + report.shed_requests == 12
        counters = report.metrics["counters"]
        assert counters["serve.sched.shed"] == float(report.shed_requests)

    def test_bulk_overload_defers_but_still_serves(self):
        policy = SLOPolicy.default(bulk_queue_depth=2)
        server = tiny_server(
            scheduler="continuous", slo_policy=policy,
            admission=AdmissionController(policy, hard_limit_factor=100.0),
            max_batch_size=1, max_wait_s=0.0,
        )
        exec_s = warm(server)
        requests = [
            tiny_request(slo="bulk", seed=3 + (i % 2),
                         arrival_s=i * exec_s * 1e-3)
            for i in range(8)
        ]
        # two distinct programs (seed alternates) so later arrivals can't
        # all free-ride one in-flight execution via joins
        server.serve([tiny_request(seed=4)])  # warm the second program
        report = server.serve(requests)
        assert report.deferred_requests > 0
        assert report.shed_requests == 0
        assert len(report.responses) == 8  # deferred != dropped
        assert any(r.deferred for r in report.responses)

    def test_unknown_slo_class_raises(self):
        policy = SLOPolicy.default()
        server = tiny_server(scheduler="continuous", slo_policy=policy)
        warm(server)
        with pytest.raises(ValueError, match="SLO class"):
            server.serve([tiny_request(slo="platinum")])


class TestPreemption:
    def make_requests(self, exec_s):
        # bulk founder at t=0 holds the only device; a different-program
        # interactive request lands mid-execution -> must preempt at a
        # layer boundary rather than wait for the bulk batch to drain
        return [
            tiny_request(slo="bulk", seed=3, arrival_s=0.0),
            tiny_request(slo="interactive", seed=4,
                         arrival_s=0.45 * exec_s),
        ]

    def prepared_server(self):
        policy = SLOPolicy.default()
        server = tiny_server(scheduler="continuous", slo_policy=policy,
                             max_wait_s=0.0)
        exec_s = warm(server, seed=3)
        warm(server, seed=4)
        return server, exec_s

    def test_interactive_preempts_bulk_at_a_boundary(self):
        server, exec_s = self.prepared_server()
        report = server.serve(self.make_requests(exec_s))
        assert report.preemptions == 1
        by_slo = {r.slo: r for r in report.responses}
        # the preemptor overtakes: it finishes before the preempted bulk
        assert by_slo["interactive"].finish_s < by_slo["bulk"].finish_s
        # the paused execution resumes and still completes correctly
        assert by_slo["bulk"].output is not None

    def test_preempted_outputs_stay_exact(self):
        server, exec_s = self.prepared_server()
        requests = self.make_requests(exec_s)
        seed_of = {r.request_id: r.seed for r in requests}
        report = server.serve(requests)
        solo = tiny_server()
        warm(solo, seed=3), warm(solo, seed=4)
        for resp in report.responses:
            ref = solo.serve(
                [tiny_request(seed=seed_of[resp.request_id])]
            ).responses[0]
            assert np.array_equal(resp.output, ref.output)

    def test_preemption_can_be_disabled(self):
        server, exec_s = self.prepared_server()
        sched = ContinuousScheduler(server, policy=server.slo_policy,
                                    preempt=False)
        report = sched.run(self.make_requests(exec_s))
        assert report.preemptions == 0
        by_slo = {r.slo: r for r in report.responses}
        assert by_slo["interactive"].finish_s > by_slo["bulk"].finish_s


class TestAutoscalerIntegration:
    def test_pool_grows_under_backlog_and_drains_back(self):
        server = tiny_server(
            pool_size=3, scheduler="continuous", max_wait_s=0.0,
            autoscaler=PoolAutoscaler(
                min_devices=1, scale_up_queue_per_device=2.0,
            ),
        )
        exec_s = warm(server, seed=9)
        warm(server, seed=9, model="GIN")
        # two models: joins can only absorb same-program arrivals, so
        # the cross-program backlog is what pressures the autoscaler
        requests = synthesize(
            num_requests=30, arrival="poisson", rate_rps=12.0 / exec_s,
            models=("GCN", "GIN"), datasets=("CO",), scale=SCALE, seed=9,
        )
        report = server.serve(requests)
        events = report.autoscaler_events
        assert events, "overload must trigger at least one scale event"
        assert any(e["to_devices"] > e["from_devices"] for e in events)
        assert 1 <= report.active_devices <= 3
        for e in events:
            assert 1 <= e["to_devices"] <= 3

    def test_provision_delay_charges_the_new_device(self):
        server = tiny_server(
            pool_size=2, scheduler="continuous", max_wait_s=0.0,
            autoscaler=PoolAutoscaler(
                min_devices=1, scale_up_queue_per_device=1.0,
                scale_down_queue_per_device=0.5,
                provision_delay_s=0.05,
            ),
        )
        exec_s = warm(server)
        requests = [tiny_request(seed=3 + i, arrival_s=0.0)
                    for i in range(4)]
        for i in range(4):
            warm(server, seed=3 + i)
        report = server.serve(requests)
        grow = [e for e in report.autoscaler_events
                if e["to_devices"] > e["from_devices"]]
        assert grow
        # nothing can start on the grown device before its cold start
        t_grow = grow[0]["t_s"]
        dev1 = [e for e in server.pool.events if e.device == 1]
        if dev1:
            assert min(e.start for e in dev1) >= t_grow + 0.05 - 1e-12

    def test_without_autoscaler_the_whole_pool_is_active(self):
        server = tiny_server(pool_size=2, scheduler="continuous")
        warm(server)
        report = server.serve([tiny_request(arrival_s=0.0)])
        assert report.active_devices == 2
        assert report.autoscaler_events == []


# ---------------------------------------------------------------------------
# satellite regressions
# ---------------------------------------------------------------------------


class TestBatcherRegressions:
    def req(self, **kw):
        return tiny_request(**kw)

    def key(self, r):
        return r.batch_key(make_tiny_config())

    def test_next_deadline_is_none_when_empty(self):
        b = MicroBatcher(max_batch_size=4, max_wait_s=1e-3)
        assert b.next_deadline() is None
        r = self.req(arrival_s=0.1)
        b.add(r, self.key(r), ready_s=0.1)
        assert b.next_deadline() == pytest.approx(0.1 + 1e-3)
        b.drain()
        assert b.next_deadline() is None

    def test_zero_wait_is_due_immediately(self):
        b = MicroBatcher(max_batch_size=4, max_wait_s=0.0)
        r = self.req(arrival_s=0.5)
        b.add(r, self.key(r), ready_s=0.5)
        assert b.next_deadline() == pytest.approx(0.5)
        # due() uses a strict < so a same-instant arrival can still
        # coalesce before dispatch; an instant later the group flushes
        assert b.due(0.5) == []
        assert len(b.due(0.5 + 1e-12)) == 1

    def test_due_and_drain_are_fifo_on_deadline_ties(self):
        b = MicroBatcher(max_batch_size=4, max_wait_s=1e-3)
        keys = []
        for seed in (3, 4, 5):  # three distinct groups, same deadline
            r = self.req(seed=seed, arrival_s=0.2)
            keys.append(self.key(r))
            b.add(r, keys[-1], ready_s=0.2)
        drained = b.drain()
        assert [g.key for g in drained] == keys
        for seed in (5, 4, 3):
            r = self.req(seed=seed, arrival_s=0.2)
            b.add(r, self.key(r), ready_s=0.2)
        due = b.due(1.0)
        assert [g.requests[0].seed for g in due] == [5, 4, 3]


class TestWorkloadClassSkew:
    def test_skew_bounds_are_validated(self):
        for bad in (-0.1, 1.1):
            with pytest.raises(ValueError, match="class_skew"):
                synthesize(num_requests=4, class_skew=bad)

    def test_default_is_all_bulk(self):
        requests = synthesize(num_requests=16, seed=7)
        assert all(r.slo == "bulk" for r in requests)

    def test_full_skew_is_all_interactive(self):
        requests = synthesize(num_requests=16, class_skew=1.0, seed=7)
        assert all(r.slo == "interactive" for r in requests)

    def test_tags_are_deterministic_per_seed(self):
        a = synthesize(num_requests=64, class_skew=0.4, seed=21)
        b = synthesize(num_requests=64, class_skew=0.4, seed=21)
        assert [r.slo for r in a] == [r.slo for r in b]
        c = synthesize(num_requests=64, class_skew=0.4, seed=22)
        assert [r.slo for r in a] != [r.slo for r in c]

    def test_tagging_does_not_perturb_the_rest_of_the_stream(self):
        plain = synthesize(num_requests=32, seed=21)
        tagged = synthesize(num_requests=32, class_skew=0.5, seed=21)
        assert [r.arrival_s for r in plain] == [r.arrival_s for r in tagged]
        assert [r.model for r in plain] == [r.model for r in tagged]
        assert [r.seed for r in plain] == [r.seed for r in tagged]

    def test_skew_fraction_is_roughly_honoured(self):
        requests = synthesize(num_requests=400, class_skew=0.3, seed=5)
        frac = sum(r.slo == "interactive" for r in requests) / 400
        assert 0.2 < frac < 0.4


class TestReportRoundTrip:
    @pytest.fixture(scope="class")
    def report(self):
        policy = SLOPolicy.default(
            interactive_target_p99_s=1.0, bulk_queue_depth=64,
        )
        server = tiny_server(
            pool_size=2, scheduler="continuous", slo_policy=policy,
            admission=AdmissionController(policy),
            autoscaler=PoolAutoscaler(min_devices=1,
                                      scale_up_queue_per_device=2.0),
        )
        exec_s = warm(server, seed=17)
        requests = synthesize(
            num_requests=24, arrival="poisson", rate_rps=8.0 / exec_s,
            models=("GCN",), datasets=("CO",), scale=SCALE,
            class_skew=0.4, seed=17,
        )
        return server.serve(requests)

    def test_to_dict_round_trips_through_json(self, report):
        d = report.to_dict()
        again = json.loads(json.dumps(d))
        assert again["scheduler"] == "continuous"
        for key in ("goodput_rps", "active_devices", "shed_requests",
                    "deferred_requests", "joined_requests", "preemptions",
                    "max_queue_depth", "class_breakdown",
                    "autoscaler_events"):
            assert key in again

    def test_class_breakdown_grades_both_tiers(self, report):
        cb = report.class_breakdown
        assert set(cb) <= {"interactive", "bulk"}
        assert "interactive" in cb
        inter = cb["interactive"]
        for key in ("count", "p50_s", "p95_s", "p99_s", "queue_p95_s",
                    "target_p99_s", "violations", "joined", "deferred"):
            assert key in inter
        assert inter["target_p99_s"] == 1.0
        total = sum(c["count"] for c in cb.values())
        assert total == len(report.responses)

    def test_goodput_counts_only_met_targets(self, report):
        # the 1.0 s interactive target is generous: nothing violates it,
        # bulk has no target, so goodput == throughput
        assert report.goodput_rps == pytest.approx(report.throughput_rps)
        assert all(c["violations"] == 0
                   for c in report.class_breakdown.values())

    def test_format_report_renders_the_sched_sections(self, report):
        text = report.format_report()
        assert "scheduler" in text and "continuous" in text
        assert "goodput" in text
        assert "class interactive" in text and "class bulk" in text
        if report.autoscaler_events:
            assert "autoscaler" in text

    def test_legacy_report_defaults_stay_inert(self):
        server = tiny_server()
        warm(server)
        report = server.serve([tiny_request(arrival_s=0.0)])
        assert report.scheduler == "legacy"
        assert report.goodput_rps == pytest.approx(report.throughput_rps)
        assert report.autoscaler_events == []
        assert report.shed_requests == 0
        text = report.format_report()
        assert "scheduler" not in text

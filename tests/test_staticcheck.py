"""repro.staticcheck: rule fixtures, ratchet behaviour, CLI exit codes.

Every rule gets a positive fixture (must fire), a negative fixture (must
stay silent) and the shared suppression-comment check; the ratchet tests
pin the burn-down semantics (baseline absorbs old findings, new ones
fail); the self-check asserts the shipped tree is clean against the
committed baseline — the same gate CI runs.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.__main__ import main as cli_main
from repro.staticcheck import (
    CLOCKED_PACKAGES,
    StaticCheckError,
    WALLCLOCK_ALLOWLIST,
    counts_of,
    load_baseline,
    ratchet,
    rule_catalog,
    run_checks,
    save_baseline,
)
from repro.staticcheck.typing_ratchet import (
    compare_counts,
    load_mypy_baseline,
    mypy_available,
    mypy_ratchet,
    parse_error_counts,
    save_mypy_baseline,
)

REPO_ROOT = Path(__file__).resolve().parent.parent


def write_module(root: Path, rel: str, source: str) -> None:
    path = root / rel
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(source, encoding="utf-8")


def check(root: Path, source: str, codes, rel="src/repro/serve/mod.py",
          tests: dict | None = None):
    write_module(root, rel, source)
    for test_rel, text in (tests or {}).items():
        write_module(root, test_rel, text)
    return run_checks(root, paths=(rel,), test_paths=("tests",), codes=codes)


# one (positive, negative) source pair per rule; positives written into a
# clocked module (serve/) so the clock rules apply
RULE_FIXTURES = {
    "RPR101": (
        "import time\n\ndef f():\n    return time.perf_counter()\n",
        "def f():\n    return 0.0\n",
    ),
    "RPR102": (
        "import datetime\n\ndef f():\n    return datetime.datetime.now()\n",
        "import datetime\n\ndef f():\n"
        "    return datetime.datetime(2023, 5, 15)\n",
    ),
    "RPR103": (
        "import time\n\ndef f():\n    time.sleep(0.1)\n",
        "import time  # imported, never slept on\n\ndef f():\n    return 1\n",
    ),
    "RPR201": (
        "import numpy as np\n\ndef f():\n    return np.random.rand(3)\n",
        "import numpy as np\n\ndef f(seed):\n"
        "    return np.random.default_rng(seed).random(3)\n",
    ),
    "RPR202": (
        "import random\n\ndef f():\n    return random.random()\n",
        "import random\n\ndef f(seed):\n"
        "    return random.Random(seed).random()\n",
    ),
    "RPR203": (
        "import numpy as np\n\ndef f():\n    return np.random.default_rng()\n",
        "import numpy as np\n\ndef f(seed):\n"
        "    return np.random.default_rng(seed)\n",
    ),
    "RPR204": (
        "def f(a, b):\n    out = []\n    for k in {a, b}:\n"
        "        out.append(k)\n    return out\n",
        "def f(a, b):\n    out = []\n    for k in sorted({a, b}):\n"
        "        out.append(k)\n    return out\n",
    ),
    "RPR301": (
        "def f(wait_ms, timeout_s):\n    return wait_ms + timeout_s\n",
        "def f(wait_ms, timeout_s):\n"
        "    return wait_ms * 1e-3 + timeout_s\n",
    ),
    "RPR302": (
        "def f(wait_ms):\n    wait_s = wait_ms\n    return wait_s\n",
        "def f(wait_ms):\n    wait_s = wait_ms * 1e-3\n    return wait_s\n",
    ),
    "RPR303": (
        "def latency_s(dur_ms):\n    return dur_ms\n",
        "def latency_s(dur_ms):\n    return dur_ms * 1e-3\n",
    ),
    "RPR304": (
        "def g(timeout_s=1.0):\n    return timeout_s\n\n"
        "def f(wait_ms):\n    return g(timeout_s=wait_ms)\n",
        "def g(timeout_s=1.0):\n    return timeout_s\n\n"
        "def f(wait_s):\n    return g(timeout_s=wait_s)\n",
    ),
    "RPR402": (
        "def f(obj):\n    object.__setattr__(obj, 'x', 1)\n",
        "class C:\n    def __post_init__(self):\n"
        "        object.__setattr__(self, 'x', 1)\n",
    ),
    "RPR502": (
        "import warnings\n\ndef __getattr__(name):\n"
        "    warnings.warn(f'{name} deprecated', DeprecationWarning)\n"
        "    return 1\n",
        "import warnings\n\n_warned = set()\n\ndef __getattr__(name):\n"
        "    if name not in _warned:\n        _warned.add(name)\n"
        "        warnings.warn(f'{name} deprecated', DeprecationWarning)\n"
        "    return 1\n",
    ),
    "RPR503": (
        "__all__ = ['exists', 'ghost']\n\ndef exists():\n    return 1\n",
        "__all__ = ['exists']\n\ndef exists():\n    return 1\n",
    ),
}


class TestRuleFixtures:
    @pytest.mark.parametrize("code", sorted(RULE_FIXTURES))
    def test_positive_fires(self, code, tmp_path):
        bad, _good = RULE_FIXTURES[code]
        findings = check(tmp_path, bad, codes=[code])
        assert [f.code for f in findings] == [code]

    @pytest.mark.parametrize("code", sorted(RULE_FIXTURES))
    def test_negative_silent(self, code, tmp_path):
        _bad, good = RULE_FIXTURES[code]
        assert check(tmp_path, good, codes=[code]) == []

    @pytest.mark.parametrize("code", sorted(RULE_FIXTURES))
    def test_line_suppression(self, code, tmp_path):
        bad, _good = RULE_FIXTURES[code]
        findings = check(tmp_path, bad, codes=[code])
        lines = bad.splitlines()
        lines[findings[0].line - 1] += f"  # staticcheck: ignore[{code}]"
        assert check(tmp_path, "\n".join(lines) + "\n", codes=[code]) == []

    @pytest.mark.parametrize("code", sorted(RULE_FIXTURES))
    def test_file_suppression(self, code, tmp_path):
        bad, _good = RULE_FIXTURES[code]
        suppressed = f"# staticcheck: ignore-file[{code}]\n" + bad
        assert check(tmp_path, suppressed, codes=[code]) == []

    def test_bare_ignore_suppresses_everything(self, tmp_path):
        bad = "def f(a_ms, b_s):\n    return a_ms + b_s  # staticcheck: ignore\n"
        assert check(tmp_path, bad, codes=["RPR301"]) == []

    def test_wrong_code_does_not_suppress(self, tmp_path):
        bad = ("def f(a_ms, b_s):\n"
               "    return a_ms + b_s  # staticcheck: ignore[RPR999]\n")
        findings = check(tmp_path, bad, codes=["RPR301"])
        assert [f.code for f in findings] == ["RPR301"]


class TestClockRuleScoping:
    def test_allowlisted_module_passes(self, tmp_path):
        rel = next(iter(WALLCLOCK_ALLOWLIST))
        bad = RULE_FIXTURES["RPR101"][0]
        assert check(tmp_path, bad, codes=["RPR101"], rel=rel) == []

    def test_unallowlisted_host_module_fails(self, tmp_path):
        bad = RULE_FIXTURES["RPR101"][0]
        findings = check(tmp_path, bad, codes=["RPR101"],
                         rel="src/repro/analysis/mod.py")
        assert findings and "WALLCLOCK_ALLOWLIST" in findings[0].message

    @pytest.mark.parametrize("pkg", CLOCKED_PACKAGES)
    def test_every_clocked_package_guarded(self, pkg, tmp_path):
        bad = RULE_FIXTURES["RPR101"][0]
        findings = check(tmp_path, bad, codes=["RPR101"],
                         rel=f"src/repro/{pkg}/mod.py")
        assert findings and "clocked module" in findings[0].message

    def test_no_allowlist_entry_in_clocked_packages(self):
        for rel in WALLCLOCK_ALLOWLIST:
            assert Path(rel).parts[2] not in CLOCKED_PACKAGES

    def test_non_library_paths_ignored(self, tmp_path):
        bad = RULE_FIXTURES["RPR101"][0]
        assert check(tmp_path, bad, codes=["RPR101"],
                     rel="benchmarks/bench_mod.py") == []


class TestProjectRules:
    def test_rpr401_missing_counterpart(self, tmp_path):
        src = "def solve_reference(x):\n    return x\n"
        findings = check(tmp_path, src, codes=["RPR401"])
        assert findings and "no fast counterpart" in findings[0].message

    def test_rpr401_missing_test(self, tmp_path):
        src = ("def solve_reference(x):\n    return x\n\n"
               "def solve(x):\n    return x\n")
        findings = check(tmp_path, src, codes=["RPR401"])
        assert findings and "no test references both" in findings[0].message

    def test_rpr401_satisfied(self, tmp_path):
        src = ("def solve_reference(x):\n    return x\n\n"
               "def solve(x):\n    return x\n")
        tests = {"tests/test_mod.py":
                 "def test_exact():\n"
                 "    from mod import solve, solve_reference\n"
                 "    assert solve(1) == solve_reference(1)\n"}
        assert check(tmp_path, src, codes=["RPR401"], tests=tests) == []

    def test_rpr501_partial_to_dict(self, tmp_path):
        src = (
            "from dataclasses import dataclass\n\n"
            "@dataclass\nclass Report:\n    kept: int\n    dropped: int\n\n"
            "    def to_dict(self):\n        return {'kept': self.kept}\n"
        )
        findings = check(tmp_path, src, codes=["RPR501"])
        assert findings and "'dropped'" in findings[0].message

    def test_rpr501_asdict_covers_all(self, tmp_path):
        src = (
            "from dataclasses import asdict, dataclass\n\n"
            "@dataclass\nclass Report:\n    kept: int\n    dropped: int\n\n"
            "    def to_dict(self):\n        return asdict(self)\n"
        )
        assert check(tmp_path, src, codes=["RPR501"]) == []


class TestRatchet:
    def _findings(self, tmp_path, n_bad):
        src = "".join(
            f"def f{i}(a_ms, b_s):\n    return a_ms + b_s\n\n" for i in range(n_bad)
        )
        return check(tmp_path, src, codes=["RPR301"])

    def test_baseline_absorbs_old_findings(self, tmp_path):
        findings = self._findings(tmp_path, 2)
        base = tmp_path / "baseline.json"
        save_baseline(base, findings)
        result = ratchet(findings, load_baseline(base))
        assert result.ok and len(result.baselined) == 2 and not result.improved

    def test_new_finding_beyond_baseline_fails(self, tmp_path):
        old = self._findings(tmp_path, 2)
        base = tmp_path / "baseline.json"
        save_baseline(base, old)
        grown = self._findings(tmp_path, 3)
        result = ratchet(grown, load_baseline(base))
        assert not result.ok and len(result.new) == 1
        # the excess surfaces as the latest finding in the file
        assert result.new[0].line == max(f.line for f in grown)

    def test_burn_down_reports_improvement(self, tmp_path):
        old = self._findings(tmp_path, 3)
        base = tmp_path / "baseline.json"
        save_baseline(base, old)
        shrunk = self._findings(tmp_path, 1)
        result = ratchet(shrunk, load_baseline(base))
        assert result.ok and sum(result.improved.values()) == 2

    def test_missing_baseline_is_empty(self, tmp_path):
        assert load_baseline(tmp_path / "nope.json") == {}

    def test_corrupt_baseline_raises(self, tmp_path):
        bad = tmp_path / "baseline.json"
        bad.write_text("{not json")
        with pytest.raises(StaticCheckError):
            load_baseline(bad)

    def test_counts_are_per_code_and_file(self, tmp_path):
        findings = self._findings(tmp_path, 2)
        counts = counts_of(findings)
        assert counts == {"RPR301:src/repro/serve/mod.py": 2}


class TestCLI:
    def _seed_violation(self, tmp_path):
        write_module(tmp_path, "src/repro/serve/bad.py",
                     "def f(a_ms, b_s):\n    return a_ms + b_s\n")

    def test_clean_tree_exit_0(self, tmp_path, capsys):
        write_module(tmp_path, "src/repro/ok.py", "def f():\n    return 1\n")
        rc = cli_main(["staticcheck", "--root", str(tmp_path)])
        assert rc == 0
        assert "0 finding(s)" in capsys.readouterr().out

    def test_seeded_violation_exit_1(self, tmp_path, capsys):
        self._seed_violation(tmp_path)
        rc = cli_main(["staticcheck", "--root", str(tmp_path)])
        assert rc == 1
        assert "RPR301" in capsys.readouterr().out

    def test_update_then_check_baseline_exit_0(self, tmp_path, capsys):
        self._seed_violation(tmp_path)
        assert cli_main(["staticcheck", "--root", str(tmp_path),
                         "--update-baseline"]) == 0
        assert cli_main(["staticcheck", "--root", str(tmp_path),
                         "--baseline"]) == 0
        out = capsys.readouterr().out
        assert "absorbed" in out

    def test_new_violation_beyond_baseline_exit_1(self, tmp_path):
        self._seed_violation(tmp_path)
        assert cli_main(["staticcheck", "--root", str(tmp_path),
                         "--update-baseline"]) == 0
        write_module(tmp_path, "src/repro/serve/worse.py",
                     "def g(c_ms, d_s):\n    return c_ms - d_s\n")
        assert cli_main(["staticcheck", "--root", str(tmp_path),
                         "--baseline"]) == 1

    def test_json_report_shape(self, tmp_path, capsys):
        self._seed_violation(tmp_path)
        rc = cli_main(["staticcheck", "--root", str(tmp_path), "--json"])
        assert rc == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["ok"] is False
        assert payload["counts_by_code"] == {"RPR301": 1}
        assert payload["findings"][0]["path"] == "src/repro/serve/bad.py"

    def test_out_artifact_written(self, tmp_path, capsys):
        self._seed_violation(tmp_path)
        out = tmp_path / "report" / "staticcheck.json"
        cli_main(["staticcheck", "--root", str(tmp_path), "--out", str(out)])
        capsys.readouterr()
        assert json.loads(out.read_text())["counts_by_code"] == {"RPR301": 1}

    def test_bad_path_exit_2(self, tmp_path, capsys):
        rc = cli_main(["staticcheck", "--root", str(tmp_path), "no/such/dir"])
        assert rc == 2
        capsys.readouterr()

    def test_unknown_rule_exit_2(self, tmp_path, capsys):
        write_module(tmp_path, "src/repro/ok.py", "x = 1\n")
        rc = cli_main(["staticcheck", "--root", str(tmp_path),
                       "--rules", "RPR999"])
        assert rc == 2
        capsys.readouterr()

    def test_list_rules(self, capsys):
        assert cli_main(["staticcheck", "--list-rules"]) == 0
        out = capsys.readouterr().out
        assert "RPR101" in out and "RPR503" in out


class TestMypyRatchet:
    SAMPLE = (
        "src/repro/serve/server.py:10: error: Incompatible types [assignment]\n"
        "src/repro/serve/pool.py:5: error: Missing return [return]\n"
        "src/repro/formats/csr.py:7: error: Untyped def [no-untyped-def]\n"
        "src/repro/config.py:3: error: Bad thing [misc]\n"
        "src/repro/serve/server.py:12: note: See docs\n"
    )

    def test_parse_error_counts(self):
        assert parse_error_counts(self.SAMPLE) == {
            "repro": 1, "repro.formats": 1, "repro.serve": 2,
        }

    def test_growth_fails(self, tmp_path):
        base = tmp_path / "mypy.json"
        save_mypy_baseline(base, {"repro.serve": 1}, "1.11.0")
        verdict = compare_counts(
            {"repro.serve": 2}, load_mypy_baseline(base), "1.11.0"
        )
        assert verdict["status"] == "fail"
        assert verdict["grown"]["repro.serve"] == {"baseline": 1, "now": 2}

    def test_shrink_passes_and_reports(self, tmp_path):
        base = tmp_path / "mypy.json"
        save_mypy_baseline(base, {"repro.serve": 3}, "1.11.0")
        verdict = compare_counts(
            {"repro.serve": 1}, load_mypy_baseline(base), "1.11.0"
        )
        assert verdict["status"] == "ok"
        assert verdict["shrunk"]["repro.serve"] == {"baseline": 3, "now": 1}

    def test_version_change_is_stale_not_fail(self, tmp_path):
        base = tmp_path / "mypy.json"
        save_mypy_baseline(base, {"repro.serve": 0}, "1.10.0")
        verdict = compare_counts(
            {"repro.serve": 99}, load_mypy_baseline(base), "1.11.0"
        )
        assert verdict["status"] == "stale"

    def test_unmeasured_baseline_is_stale(self):
        verdict = compare_counts(
            {"repro": 5},
            {"version": 1, "mypy_version": None, "modules": {}},
            "1.11.0",
        )
        assert verdict["status"] == "stale"

    def test_skips_gracefully_without_mypy(self, tmp_path):
        if mypy_available():  # pragma: no cover - env-dependent branch
            pytest.skip("mypy installed: the skip path is not reachable")
        payload = mypy_ratchet(REPO_ROOT, tmp_path / "mypy.json")
        assert payload["status"] == "skipped"

    @pytest.mark.skipif(not mypy_available(), reason="mypy not installed")
    def test_real_run_against_committed_baseline(self):
        payload = mypy_ratchet(
            REPO_ROOT, REPO_ROOT / "results" / "mypy_baseline.json"
        )
        assert payload["status"] in ("ok", "stale")


class TestSelfCheck:
    def test_catalog_meets_floor(self):
        rules = rule_catalog()
        assert len(rules) >= 10
        assert len({r.category for r in rules}) >= 5

    def test_shipped_tree_is_clean_against_committed_baseline(self):
        findings = run_checks(REPO_ROOT)
        baseline = load_baseline(
            REPO_ROOT / "results" / "staticcheck_baseline.json"
        )
        result = ratchet(findings, baseline)
        assert result.ok, "\n".join(f.describe() for f in result.new)

    def test_shipped_cli_gate_exit_0(self, capsys):
        rc = cli_main(["staticcheck", "--root", str(REPO_ROOT), "--baseline"])
        capsys.readouterr()
        assert rc == 0

"""Tests for the benchmark-harness formatting helpers."""

import pytest

from repro.harness import format_table, geomean, sci, speedup_fmt, write_result, results_dir


class TestSci:
    def test_paper_style(self):
        assert sci(7.7e-3) == "7.7E-3"
        assert sci(8.83e2) == "8.8E2"
        assert sci(1.27e-1) == "1.3E-1"

    def test_negative(self):
        assert sci(-4.2e1) == "-4.2E1"

    def test_zero_and_none(self):
        assert sci(0.0) == "0.0E0"
        assert sci(None) == "N/A"

    def test_digits(self):
        assert sci(3.14159, digits=3) == "3.14E0"


class TestSpeedupFmt:
    def test_small(self):
        assert speedup_fmt(1.1283) == "1.13x"

    def test_large_drops_decimals(self):
        assert speedup_fmt(278.2) == "278x"

    def test_none(self):
        assert speedup_fmt(None) == "N/A"


class TestFormatTable:
    def test_alignment_and_title(self):
        t = format_table(["name", "v"], [["a", 1], ["bb", 22]], title="T")
        lines = t.splitlines()
        assert lines[0] == "T"
        assert "name" in lines[1]
        # numeric column right-aligned
        assert lines[3].rstrip().endswith("1")
        assert lines[4].rstrip().endswith("22")

    def test_wide_cells_extend_columns(self):
        t = format_table(["x"], [["very-long-cell"]])
        assert "very-long-cell" in t


class TestWriteResult:
    def test_roundtrip(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_RESULTS_DIR", str(tmp_path))
        p = write_result("unit_test_artifact", "hello")
        assert p.read_text() == "hello\n"
        assert results_dir() == tmp_path


def test_geomean_reexport():
    assert geomean([1.0, 4.0]) == pytest.approx(2.0)

"""Tests for buffers, memory, interconnect, soft processor and resources."""

import numpy as np
import pytest

from repro.config import u250_default
from repro.formats.coo import COOMatrix
from repro.formats.dense import DenseMatrix
from repro.hw.buffers import (
    BankedBuffer,
    BufferOverflowError,
    CoreBuffers,
    bank_conflict_rounds,
    max_partition_dim,
)
from repro.hw.interconnect import ButterflyNetwork, routing_rounds
from repro.hw.memory import ExternalMemory, pcie_transfer_seconds
from repro.hw.resources import (
    U250_AVAILABLE,
    estimate_cc_resources,
    estimate_resources,
)
from repro.hw.soft_processor import SoftProcessor


class TestBankedBuffer:
    def test_capacity_dense(self):
        buf = BankedBuffer("B", words=16, num_banks=4)
        ok = DenseMatrix(np.zeros((4, 4), dtype=np.float32))
        too_big = DenseMatrix(np.zeros((5, 4), dtype=np.float32))
        assert buf.fits(ok)
        assert not buf.fits(too_big)
        buf.load(ok)
        assert buf.content is ok
        with pytest.raises(BufferOverflowError):
            buf.load(too_big)

    def test_capacity_coo_three_words_per_nnz(self):
        buf = BankedBuffer("B", words=9, num_banks=4)
        coo = COOMatrix.from_dense(np.eye(3, dtype=np.float32))
        assert buf.words_required(coo) == 9
        assert buf.fits(coo)

    def test_bank_mapping(self):
        buf = BankedBuffer("B", words=64, num_banks=4)
        assert buf.bank_of_row(0) == 0
        assert buf.bank_of_row(5) == 1
        assert buf.rows_per_cycle() == 4

    def test_core_buffers_builder(self):
        bufs = CoreBuffers.build(128, 4)
        assert bufs.buffer_u.name == "BufferU"
        assert bufs.result_buffer.words == 128
        bufs.buffer_o.load(DenseMatrix(np.zeros((2, 2), dtype=np.float32)))
        bufs.clear()
        assert bufs.buffer_o.content is None

    def test_bad_banks(self):
        with pytest.raises(ValueError):
            BankedBuffer("B", words=16, num_banks=3)


class TestMaxPartitionDim:
    def test_g_of_so(self):
        assert max_partition_dim(512 * 1024, align=16) == 720
        assert max_partition_dim(100, align=1) == 10

    def test_alignment(self):
        assert max_partition_dim(1025, align=16) == 32

    def test_bank_conflict_rounds(self):
        dest = np.array([0, 1, 2, 3])
        assert bank_conflict_rounds(dest, 4, 4) == 1
        dest = np.array([0, 0, 0, 0])
        assert bank_conflict_rounds(dest, 4, 4) == 4
        assert bank_conflict_rounds(np.array([], dtype=int), 4, 4) == 0


class TestExternalMemory:
    def test_cycles_and_ledger(self):
        cfg = u250_default()
        mem = ExternalMemory(cfg)
        # 308 bytes/cycle aggregate, 7 cores share
        cycles = mem.read_cycles(308 * 7)
        assert cycles == pytest.approx(49.0)
        assert mem.ledger.bytes_read == 308 * 7
        mem.write_cycles(616, active_cores=1)
        assert mem.ledger.bytes_written == 616
        assert mem.ledger.total == 308 * 7 + 616

    def test_active_cores_share(self):
        cfg = u250_default()
        mem = ExternalMemory(cfg)
        c_all = mem.read_cycles(1000)
        c_two = mem.read_cycles(1000, active_cores=2)
        assert c_all == pytest.approx(c_two * 7 / 2)

    def test_reset(self):
        mem = ExternalMemory(u250_default())
        mem.read_cycles(100)
        mem.reset()
        assert mem.ledger.total == 0

    def test_pcie_model(self):
        cfg = u250_default()
        assert pcie_transfer_seconds(11.2e9, cfg) == pytest.approx(1.0)


class TestRoutingModels:
    def test_routing_rounds_conflict_free(self):
        assert routing_rounds(np.arange(8), 8, 8) == 1

    def test_routing_rounds_hot_port(self):
        assert routing_rounds(np.zeros(5, dtype=int), 8, 8) == 5

    def test_butterfly_delivers_everything(self):
        net = ButterflyNetwork(4)
        trace = net.route(np.array([0, 1, 2, 3, 0, 1]))
        assert trace.delivered == 6

    def test_butterfly_at_least_effective_model(self):
        net = ButterflyNetwork(8, issue_width=8)
        rng = np.random.default_rng(0)
        dest = rng.integers(0, 8, 32)
        trace = net.route(dest)
        assert trace.cycles >= routing_rounds(dest, 8, 8)

    def test_butterfly_pipeline_latency(self):
        # a single packet takes stages+1 cycles to traverse
        net = ButterflyNetwork(8)
        trace = net.route(np.array([5]))
        assert trace.cycles >= net.stages

    def test_bad_ports(self):
        with pytest.raises(ValueError):
            ButterflyNetwork(6)


class TestSoftProcessor:
    def test_k2p_cost(self):
        cfg = u250_default()
        soft = SoftProcessor(cfg)
        s = soft.k2p_decision_seconds(1000)
        expect = 1000 * cfg.soft_processor.instructions_per_k2p_decision / 500e6
        assert s == pytest.approx(expect)
        assert soft.stats.k2p_decisions == 1000

    def test_dispatch_includes_axi(self):
        cfg = u250_default()
        soft = SoftProcessor(cfg)
        s = soft.dispatch_seconds(10)
        instr = 10 * cfg.soft_processor.instructions_per_dispatch / 500e6
        axi = 10 * 2 / 370e6
        assert s == pytest.approx(instr + axi)

    def test_conversion_to_accel_cycles(self):
        soft = SoftProcessor(u250_default())
        assert soft.seconds_to_accel_cycles(1.0) == pytest.approx(250e6)

    def test_reset(self):
        soft = SoftProcessor(u250_default())
        soft.k2p_decision_seconds(5)
        soft.reset()
        assert soft.stats.seconds == 0.0


class TestResources:
    def test_fig9_reproduced_at_default(self):
        report = estimate_resources(u250_default())
        assert report.per_cc["DSP"] == 1024
        assert report.per_cc["LUT"] == 118_000
        assert report.per_cc["BRAM"] == 96
        assert report.per_cc["URAM"] == 120
        assert report.total["DSP"] == 7 * 1024 + 6 + 13
        assert report.total["URAM"] == 840
        assert report.fits

    def test_fig9_utilization_band(self):
        report = estimate_resources(u250_default())
        util = report.utilization
        # paper: 58.6% LUT, 58.4% DSP, 42.6% BRAM, 87.5% URAM
        assert util["DSP"] == pytest.approx(0.584, abs=0.01)
        assert util["URAM"] == pytest.approx(0.875, abs=0.01)
        assert util["LUT"] == pytest.approx(0.586, abs=0.02)
        assert util["BRAM"] == pytest.approx(0.426, abs=0.02)

    def test_dsp_scales_quadratically(self):
        cfg8 = u250_default().replace(psys=8)
        assert estimate_cc_resources(cfg8)["DSP"] == 256

    def test_psys32_does_not_fit(self):
        cfg = u250_default().replace(psys=32)
        report = estimate_resources(cfg)
        assert report.total["DSP"] > U250_AVAILABLE["DSP"]
        assert not report.fits

    def test_format_table_renders(self):
        table = estimate_resources(u250_default()).format_table()
        assert "One CC" in table and "Utilization" in table

"""Tests for the heterogeneous-platform extension (paper §IX)."""

import numpy as np
import pytest

from repro import Compiler, build_model, init_weights, load_dataset, u250_default
from repro.hetero import FPGA_DEVICE, GPU_DEVICE, HeterogeneousRuntime
from repro.hetero.executor import materialize_intermediates
from repro.hw.report import Primitive


@pytest.fixture(scope="module")
def dense_program():
    """Reddit-like: 100%-dense features, where GEMM routing should win."""
    data = load_dataset("RE", scale=0.02, seed=5)
    model = build_model("GCN", data.num_features, data.hidden_dim,
                        data.num_classes)
    return Compiler(u250_default()).compile(model, data, init_weights(model))


@pytest.fixture(scope="module")
def sparse_program():
    """CiteSeer-like: sparse features, mostly SpDMM/SPMM work."""
    data = load_dataset("CI", scale=0.5, seed=6)
    model = build_model("GCN", data.num_features, data.hidden_dim,
                        data.num_classes)
    return Compiler(u250_default()).compile(model, data, init_weights(model))


class TestDeviceModels:
    def test_gpu_ignores_sparsity(self):
        cfg = u250_default()
        dense = GPU_DEVICE.pair_seconds(Primitive.GEMM, 64, 64, 64, 64 * 64, cfg)
        sparse = GPU_DEVICE.pair_seconds(Primitive.GEMM, 64, 64, 64, 1, cfg)
        assert dense == sparse

    def test_fpga_spdmm_scales_with_nnz(self):
        cfg = u250_default()
        t1 = FPGA_DEVICE.pair_seconds(Primitive.SPDMM, 512, 512, 128, 100, cfg)
        t2 = FPGA_DEVICE.pair_seconds(Primitive.SPDMM, 512, 512, 128, 10_000, cfg)
        assert t2 > t1

    def test_skip_free_everywhere(self):
        cfg = u250_default()
        for dev in (GPU_DEVICE, FPGA_DEVICE):
            assert dev.pair_seconds(Primitive.SKIP, 64, 64, 64, 0, cfg) == 0.0

    def test_gpu_beats_fpga_on_dense_gemm(self):
        cfg = u250_default()
        n = 1024
        gpu = GPU_DEVICE.pair_seconds(Primitive.GEMM, n, n, n, n * n, cfg)
        fpga = FPGA_DEVICE.pair_seconds(Primitive.GEMM, n, n, n, n * n, cfg)
        assert gpu < fpga


class TestMaterializeIntermediates:
    def test_all_kernel_outputs_present(self, sparse_program):
        store = materialize_intermediates(sparse_program)
        for kernel in sparse_program.graph.topo_order():
            assert kernel.out_name in store

    def test_final_output_matches_reference(self, sparse_program):
        from repro import reference_inference
        from repro.datasets import load_dataset

        store = materialize_intermediates(sparse_program)
        data = load_dataset("CI", scale=0.5, seed=6)
        model = build_model("GCN", data.num_features, data.hidden_dim,
                            data.num_classes)
        ref = reference_inference(model, data.a, data.h0,
                                  init_weights(model))
        np.testing.assert_allclose(store["H_out"], ref, rtol=1e-3, atol=1e-5)


class TestHeterogeneousRuntime:
    def test_routing_rule(self):
        rt = HeterogeneousRuntime()
        assert rt.device_for(Primitive.GEMM).name == "GPU"
        assert rt.device_for(Primitive.SPDMM).name == "FPGA"
        assert rt.device_for(Primitive.SPMM).name == "FPGA"

    def test_dense_workload_benefits(self, dense_program):
        rt = HeterogeneousRuntime()
        het = rt.run(dense_program)
        fpga_only = rt.run_fpga_only(dense_program)
        assert het.device_pairs.get("GPU", 0) > 0
        assert het.total_seconds < fpga_only.total_seconds

    def test_sparse_workload_mostly_fpga(self, sparse_program):
        rt = HeterogeneousRuntime()
        het = rt.run(sparse_program)
        assert het.device_pairs["FPGA"] > het.device_pairs.get("GPU", 0)
        # no dense work -> hetero cannot be much worse than FPGA-only
        fpga_only = rt.run_fpga_only(sparse_program)
        assert het.total_seconds <= fpga_only.total_seconds * 1.1

    def test_result_accessors(self, dense_program):
        het = HeterogeneousRuntime().run(dense_program)
        assert het.latency_ms == pytest.approx(het.total_seconds * 1e3)
        assert het.dominant_device() in ("GPU", "FPGA")
        assert sum(het.primitive_counts.values()) > 0

    def test_fpga_parallel_cores_scaling(self, dense_program):
        r1 = HeterogeneousRuntime(fpga_parallel_cores=1).run(dense_program)
        r7 = HeterogeneousRuntime(fpga_parallel_cores=7).run(dense_program)
        assert r7.total_seconds < r1.total_seconds

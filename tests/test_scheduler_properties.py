"""Property-based tests on the Algorithm 8 scheduling model.

The paper's dynamic task scheduling is greedy list scheduling (idle core
takes the next task).  Classic results bound its makespan: for any task
set, greedy ≤ (2 - 1/m) x OPT, and OPT ≥ max(total/m, longest task).
These invariants must hold for every schedule the model produces — they
are what makes the eta * N_CC load-balance constraint of §VI-C
sufficient in practice.
"""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.runtime.scheduler import CoreTimeline

durations = st.lists(st.floats(0.1, 1000.0), min_size=1, max_size=60)
cores = st.integers(1, 8)


def schedule(tasks, m):
    tl = CoreTimeline(m)
    for t in tasks:
        tl.assign_to(tl.peek_next_core(), t)
    makespan = tl.barrier()
    return tl, makespan


class TestGreedyBounds:
    @given(durations, cores)
    @settings(max_examples=150, deadline=None)
    def test_makespan_at_least_lower_bounds(self, tasks, m):
        _, makespan = schedule(tasks, m)
        lower = max(sum(tasks) / m, max(tasks))
        assert makespan >= lower - 1e-9

    @given(durations, cores)
    @settings(max_examples=150, deadline=None)
    def test_graham_bound(self, tasks, m):
        """Greedy list scheduling is a (2 - 1/m)-approximation."""
        _, makespan = schedule(tasks, m)
        opt_lower = max(sum(tasks) / m, max(tasks))
        assert makespan <= (2 - 1 / m) * opt_lower + 1e-6

    @given(durations, cores)
    @settings(max_examples=100, deadline=None)
    def test_work_conserved(self, tasks, m):
        tl, _ = schedule(tasks, m)
        np.testing.assert_allclose(float(tl.busy.sum()), sum(tasks), rtol=1e-9)

    @given(durations, cores)
    @settings(max_examples=100, deadline=None)
    def test_no_core_idles_while_tasks_wait(self, tasks, m):
        """Greedy invariant: when a task starts, its core was the
        earliest-available one, so no other core was idle earlier."""
        tl = CoreTimeline(m)
        for t in tasks:
            core = tl.peek_next_core()
            earliest = float(tl.available.min())
            start, _ = tl.assign_to(core, t)
            assert start == earliest

    @given(durations)
    @settings(max_examples=50, deadline=None)
    def test_single_core_serialises(self, tasks):
        _, makespan = schedule(tasks, 1)
        np.testing.assert_allclose(makespan, sum(tasks), rtol=1e-9)

    @given(durations, cores)
    @settings(max_examples=100, deadline=None)
    def test_load_balance_bounds(self, tasks, m):
        tl, _ = schedule(tasks, m)
        assert 0.0 <= tl.load_balance() <= 1.0
        assert 0.0 <= tl.utilisation() <= 1.0 + 1e-9

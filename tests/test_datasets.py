"""Tests for the synthetic dataset generators (Table VI equivalents)."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.datasets import (
    DATASET_NAMES,
    TABLE_VI,
    load_dataset,
    powerlaw_graph,
    sparse_features,
)
from repro.formats.density import density


class TestPowerlawGraph:
    def test_exact_edge_count_directed(self):
        a = powerlaw_graph(200, 1000, seed=1)
        assert a.nnz == 1000
        assert a.shape == (200, 200)

    def test_symmetric_doubles_nnz(self):
        a = powerlaw_graph(200, 500, seed=2, symmetric=True)
        assert a.nnz == 1000
        assert (a != a.T).nnz == 0

    def test_no_self_loops(self):
        a = powerlaw_graph(100, 400, seed=3)
        assert a.diagonal().sum() == 0

    def test_seeded_determinism(self):
        a1 = powerlaw_graph(100, 300, seed=4)
        a2 = powerlaw_graph(100, 300, seed=4)
        assert (a1 != a2).nnz == 0
        a3 = powerlaw_graph(100, 300, seed=5)
        assert (a1 != a3).nnz > 0

    def test_degree_skew(self):
        """Power-law generation should produce hub vertices."""
        a = powerlaw_graph(500, 3000, seed=6)
        deg = np.asarray(a.sum(axis=1)).ravel()
        assert deg.max() > 4 * deg.mean()

    def test_too_many_edges_rejected(self):
        with pytest.raises(ValueError):
            powerlaw_graph(10, 1000, seed=0)

    def test_tiny_graph_rejected(self):
        with pytest.raises(ValueError):
            powerlaw_graph(1, 0)


class TestSparseFeatures:
    @pytest.mark.parametrize("dens", [0.001, 0.01, 0.2])
    def test_sparse_path_exact_nnz(self, dens):
        h = sparse_features(300, 50, dens, seed=1)
        assert sp.issparse(h)
        assert h.nnz == int(round(dens * 300 * 50))

    @pytest.mark.parametrize("dens", [0.5, 0.9, 1.0])
    def test_dense_path_exact_nnz(self, dens):
        h = sparse_features(100, 40, dens, seed=2)
        assert isinstance(h, np.ndarray)
        assert np.count_nonzero(h) == int(round(dens * 100 * 40))

    def test_values_bounded_away_from_zero(self):
        h = sparse_features(100, 20, 0.1, seed=3)
        assert np.all(h.data >= 0.5) and np.all(h.data <= 1.5)

    def test_invalid_density(self):
        with pytest.raises(ValueError):
            sparse_features(10, 10, 1.5)


class TestCatalog:
    def test_all_six_datasets_defined(self):
        assert set(DATASET_NAMES) == {"CI", "CO", "PU", "FL", "NE", "RE"}

    def test_table_vi_statistics(self):
        # spot checks against the paper's Table VI
        assert TABLE_VI["CI"].vertices == 3327
        assert TABLE_VI["CO"].edges == 5429
        assert TABLE_VI["PU"].features == 500
        assert TABLE_VI["NE"].classes == 186
        assert TABLE_VI["RE"].h0_density == 1.0
        assert TABLE_VI["CI"].hidden_dim == 16
        assert TABLE_VI["FL"].hidden_dim == 128

    def test_full_scale_cora_matches_spec(self):
        data = load_dataset("CO", scale=1.0, seed=0)
        spec = TABLE_VI["CO"]
        assert data.num_vertices == spec.vertices
        # symmetric storage: ~2 |E| nonzeros
        assert data.num_edges == 2 * spec.edges
        assert data.h0.shape == (spec.vertices, spec.features)
        # adjacency density reproduces the paper's column (~0.14%)
        assert density(data.a) == pytest.approx(spec.a_density, rel=0.15)
        assert density(data.h0) == pytest.approx(spec.h0_density, rel=0.05)

    def test_scaled_dataset_shrinks(self):
        full = load_dataset("CO", scale=1.0)
        small = load_dataset("CO", scale=0.25)
        assert small.num_vertices == pytest.approx(full.num_vertices * 0.25, rel=0.02)
        assert small.num_edges < full.num_edges

    def test_feature_dim_override(self):
        data = load_dataset("NE", scale=0.05, feature_dim=128)
        assert data.num_features == 128
        assert density(data.h0) == pytest.approx(
            TABLE_VI["NE"].h0_density, rel=0.3
        )

    def test_meta(self):
        data = load_dataset("CI", scale=0.2)
        meta = data.meta()
        assert meta.num_vertices == data.num_vertices
        assert meta.num_edges == data.num_edges

    def test_unknown_dataset(self):
        with pytest.raises(KeyError):
            load_dataset("OGBN")

    def test_invalid_scale(self):
        with pytest.raises(ValueError):
            load_dataset("CO", scale=0.0)

    def test_reddit_defaults_scaled(self):
        # ensure the default does not try to build the 110M-edge graph
        assert TABLE_VI["RE"].default_scale < 0.2

"""Tests for the three execution-mode units (GEMM / SpDMM / SPMM).

Each unit is validated three ways: numerics against NumPy, the fast cycle
model against Table IV's idealisation, and — crucially — the fast path
against the faithful element-level simulation of the paper's algorithm.
"""

import numpy as np
import pytest

from conftest import make_tiny_config, random_sparse
from repro.hw.gemm_unit import gemm_compute_cycles, run_gemm, run_gemm_faithful
from repro.hw.spdmm_unit import (
    run_spdmm,
    run_spdmm_faithful,
    spdmm_compute_cycles,
)
from repro.hw.spmm_unit import (
    run_spmm,
    run_spmm_faithful,
    spmm_compute_cycles,
    spmm_workloads,
)

CFG = make_tiny_config()


class TestGEMM:
    def test_numerics(self):
        rng = np.random.default_rng(0)
        x = rng.random((9, 7)).astype(np.float32)
        y = rng.random((7, 5)).astype(np.float32)
        z, rep = run_gemm(x, y, CFG)
        np.testing.assert_allclose(z, x @ y, rtol=1e-5)
        assert rep.macs == 9 * 7 * 5

    def test_cycles_tile_exact(self):
        # 9x7 @ 7x5 with psys=4: 3x2 tiles, each 7+8 cycles
        assert gemm_compute_cycles(9, 7, 5, CFG) == 6 * (7 + 8)

    def test_cycles_ge_table_iv_ideal(self):
        for m, n, d in [(4, 4, 4), (16, 32, 8), (100, 3, 17)]:
            ideal = m * n * d / CFG.psys**2
            assert gemm_compute_cycles(m, n, d, CFG) >= ideal

    def test_cycles_converge_to_ideal_for_large_aligned(self):
        m = n = d = 64 * CFG.psys
        exact = gemm_compute_cycles(m, n, d, CFG)
        ideal = m * n * d / CFG.psys**2
        assert exact / ideal < 1.1

    def test_empty_dims(self):
        assert gemm_compute_cycles(0, 4, 4, CFG) == 0

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            run_gemm(np.ones((2, 3)), np.ones((4, 2)), CFG)

    def test_faithful_matches_fast(self):
        rng = np.random.default_rng(1)
        x = rng.integers(0, 3, (6, 5)).astype(np.float32)
        y = rng.integers(0, 3, (5, 7)).astype(np.float32)
        z_fast, rep = run_gemm(x, y, CFG)
        z_faith, cycles = run_gemm_faithful(x, y, CFG)
        np.testing.assert_allclose(z_faith, z_fast, rtol=1e-6)
        assert cycles == rep.compute

    def test_gemm_ignores_sparsity(self):
        """GEMM cycles are identical for dense and all-zero inputs."""
        z0 = gemm_compute_cycles(8, 8, 8, CFG)
        x = np.zeros((8, 8), dtype=np.float32)
        _, rep = run_gemm(x, x, CFG)
        assert rep.compute == z0


class TestSpDMM:
    def test_numerics(self):
        x = random_sparse(10, 8, 0.3, seed=2)
        y = np.random.default_rng(3).random((8, 6)).astype(np.float32)
        z, rep = run_spdmm(x, y, CFG)
        np.testing.assert_allclose(z, x.toarray() @ y, rtol=1e-5)
        assert rep.macs == x.nnz * 6

    def test_cycles_scale_with_nnz(self):
        c1 = spdmm_compute_cycles(100, 16, CFG)
        c2 = spdmm_compute_cycles(200, 16, CFG)
        assert c2 > c1

    def test_zero_nnz_free(self):
        assert spdmm_compute_cycles(0, 16, CFG) == 0

    def test_fetch_bound_thin_rows(self):
        # d=1: MAC bound is nnz/8 but fetch bound nnz/2 dominates (psys=4)
        cycles = spdmm_compute_cycles(100, 1, CFG)
        assert cycles == int(np.ceil(100 / 2)) + CFG.pipeline_depth

    def test_mac_bound_wide_rows(self):
        # d large: MAC throughput p^2/2 dominates
        cycles = spdmm_compute_cycles(10, 64, CFG)
        assert cycles == int(np.ceil(10 * 64 / 8)) + CFG.pipeline_depth

    def test_stored_zeros_skipped(self):
        import scipy.sparse as sp

        x = sp.csr_matrix(
            (np.array([0.0, 2.0], dtype=np.float32), ([0, 1], [0, 1])),
            shape=(2, 2),
        )
        y = np.eye(2, dtype=np.float32)
        _, rep = run_spdmm(x, y, CFG)
        assert rep.macs == 1 * 2  # only the true nonzero counts

    @pytest.mark.parametrize("seed", range(4))
    def test_faithful_numerics_and_cycle_bound(self, seed):
        x = random_sparse(12, 10, 0.25, seed=seed)
        y = np.random.default_rng(seed + 100).random((10, 5)).astype(np.float32)
        z_fast, rep = run_spdmm(x, y, CFG)
        z_faith, cycles = run_spdmm_faithful(x, y, CFG)
        np.testing.assert_allclose(z_faith, z_fast, rtol=1e-4, atol=1e-5)
        # faithful (with bank/unit conflicts) can never beat conflict-free
        assert cycles >= rep.compute
        # and congestion on random traffic stays bounded
        assert cycles <= 6 * rep.compute + 10 * CFG.pipeline_depth


class TestSPMM:
    def test_numerics(self):
        x = random_sparse(9, 11, 0.2, seed=4)
        y = random_sparse(11, 6, 0.3, seed=5)
        z, rep = run_spmm(x, y, CFG)
        np.testing.assert_allclose(z, (x @ y).toarray(), rtol=1e-5)

    def test_exact_mac_count(self):
        x = random_sparse(9, 11, 0.2, seed=6)
        y = random_sparse(11, 6, 0.3, seed=7)
        _, macs = spmm_compute_cycles(x, y, CFG)
        # independent computation of sum over X nonzeros of nnz(Y[col])
        y_rows = np.diff(y.indptr)
        expect = sum(
            int(y_rows[j]) for i in range(9)
            for j in x.indices[x.indptr[i] : x.indptr[i + 1]]
        )
        assert macs == expect

    def test_latency_is_busiest_scp(self):
        # all work lands on output row 0 -> SCP 0 serialises everything
        import scipy.sparse as sp

        x = sp.csr_matrix(np.array([[1, 1, 1, 1]] + [[0] * 4] * 7, dtype=np.float32))
        y = sp.csr_matrix(np.ones((4, 4), dtype=np.float32))
        loads, macs = spmm_workloads(x, y, CFG.psys)
        assert macs == 16
        assert loads[0] == 16
        assert loads[1:].sum() == 0
        cycles, _ = spmm_compute_cycles(x, y, CFG)
        assert cycles == 16 + CFG.pipeline_depth

    def test_zero_inputs_free(self):
        import scipy.sparse as sp

        x = sp.csr_matrix((4, 4), dtype=np.float32)
        y = sp.csr_matrix((4, 4), dtype=np.float32)
        cycles, macs = spmm_compute_cycles(x, y, CFG)
        assert cycles == 0 and macs == 0

    @pytest.mark.parametrize("seed", range(4))
    def test_faithful_matches_fast(self, seed):
        x = random_sparse(8, 9, 0.3, seed=seed + 20)
        y = random_sparse(9, 7, 0.25, seed=seed + 40)
        z_fast, rep = run_spmm(x, y, CFG)
        z_faith, cycles = run_spmm_faithful(x, y, CFG)
        np.testing.assert_allclose(z_faith, z_fast, rtol=1e-4, atol=1e-5)
        assert cycles == rep.compute or rep.compute == 0

    def test_table_iv_expectation_on_uniform(self):
        """On uniform random operands the exact count tracks the
        alpha_x * alpha_y * m*n*d expectation within 3x."""
        m, n, d = 64, 64, 64
        x = random_sparse(m, n, 0.1, seed=60)
        y = random_sparse(n, d, 0.1, seed=61)
        _, macs = spmm_compute_cycles(x, y, CFG)
        ax = x.nnz / (m * n)
        ay = y.nnz / (n * d)
        expect = ax * ay * m * n * d
        assert expect / 3 <= macs <= expect * 3

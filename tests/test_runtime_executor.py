"""Tests for the RuntimeSystem executor: correctness + accounting."""

import numpy as np
import pytest

from repro.compiler import Compiler
from repro.gnn import build_model, init_weights, reference_inference
from repro.hw import Accelerator
from repro.hw.report import Primitive
from repro.runtime import RuntimeSystem, end_to_end_seconds, make_strategy
from repro.runtime.executor import run_strategy


@pytest.fixture(scope="module")
def gcn_setup(tiny_dataset, tiny_config):
    data = tiny_dataset
    model = build_model("GCN", data.num_features, data.hidden_dim, data.num_classes)
    weights = init_weights(model, seed=5)
    program = Compiler(tiny_config).compile(model, data, weights)
    return data, model, weights, program


class TestExecutorCorrectness:
    @pytest.mark.parametrize("strategy", ["Dynamic", "S1", "S2", "Oracle"])
    def test_output_matches_reference(self, gcn_setup, strategy):
        data, model, weights, program = gcn_setup
        result = run_strategy(program, strategy)
        ref = reference_inference(model, data.a, data.h0, weights)
        np.testing.assert_allclose(
            result.output_dense(), ref, rtol=1e-3, atol=1e-5
        )

    def test_rerun_is_deterministic(self, gcn_setup):
        _, _, _, program = gcn_setup
        r1 = run_strategy(program, "Dynamic")
        r2 = run_strategy(program, "Dynamic")
        assert r1.total_cycles == r2.total_cycles
        np.testing.assert_array_equal(r1.output_dense(), r2.output_dense())

    def test_program_store_not_mutated(self, gcn_setup):
        _, _, _, program = gcn_setup
        before = set(program.store)
        run_strategy(program, "Dynamic")
        assert set(program.store) == before


class TestExecutorAccounting:
    def test_kernel_stats_cover_all_kernels(self, gcn_setup):
        _, _, _, program = gcn_setup
        result = run_strategy(program, "Dynamic")
        assert len(result.kernel_stats) == program.num_kernels
        assert result.accel_cycles == pytest.approx(
            sum(ks.cycles for ks in result.kernel_stats)
        )

    def test_every_pair_decided(self, gcn_setup):
        _, _, _, program = gcn_setup
        result = run_strategy(program, "Dynamic")
        for ks in result.kernel_stats:
            scheme = program.graph.kernel(ks.kernel_id).exec_scheme
            assert ks.num_pairs == scheme.num_tasks * scheme.pairs_per_task

    def test_dynamic_charges_analysis_static_does_not(self, gcn_setup):
        _, _, _, program = gcn_setup
        dyn = run_strategy(program, "Dynamic")
        s1 = run_strategy(program, "S1")
        assert dyn.runtime_overhead_seconds > 0
        assert s1.runtime_overhead_seconds == 0.0
        assert s1.exposed_overhead_cycles == 0.0

    def test_overhead_fraction_small(self, gcn_setup):
        _, _, _, program = gcn_setup
        result = run_strategy(program, "Dynamic")
        assert 0.0 < result.overhead_fraction < 0.5

    def test_dynamic_skips_empty_pairs(self, gcn_setup):
        _, _, _, program = gcn_setup
        dyn = run_strategy(program, "Dynamic")
        s1 = run_strategy(program, "S1")
        assert dyn.primitive_totals[Primitive.SKIP] > 0
        assert s1.primitive_totals[Primitive.SKIP] == 0

    def test_traffic_and_macs_positive(self, gcn_setup):
        _, _, _, program = gcn_setup
        result = run_strategy(program, "Dynamic")
        assert result.total_macs > 0
        assert result.bytes_read > 0
        assert result.bytes_written > 0

    def test_latency_units(self, gcn_setup):
        _, _, _, program = gcn_setup
        result = run_strategy(program, "Dynamic")
        assert result.latency_ms == pytest.approx(result.latency_s * 1e3)
        assert result.total_cycles >= result.accel_cycles

    def test_load_balance_in_unit_interval(self, gcn_setup):
        _, _, _, program = gcn_setup
        result = run_strategy(program, "Dynamic")
        assert 0.0 < result.load_balance() <= 1.0

    def test_speedup_vs(self, gcn_setup):
        _, _, _, program = gcn_setup
        dyn = run_strategy(program, "Dynamic")
        s1 = run_strategy(program, "S1")
        assert dyn.speedup_vs(s1) == pytest.approx(
            s1.total_cycles / dyn.total_cycles
        )

    def test_end_to_end_includes_all_terms(self, gcn_setup):
        _, _, _, program = gcn_setup
        result = run_strategy(program, "Dynamic")
        exec_only = end_to_end_seconds(
            program, result, include_preprocessing=False, include_pcie=False
        )
        full = end_to_end_seconds(program, result)
        assert exec_only == pytest.approx(result.latency_s)
        assert full > exec_only


class TestExecutorPaperShapes:
    """Headline behavioural claims on the tiny integration dataset."""

    def test_dynamic_beats_or_ties_static(self, gcn_setup):
        _, _, _, program = gcn_setup
        dyn = run_strategy(program, "Dynamic")
        s1 = run_strategy(program, "S1")
        s2 = run_strategy(program, "S2")
        # 5% tolerance: the Analyzer decides on the idealised Table IV
        # model while the simulator charges exact (ceil'd) cycles
        assert dyn.total_cycles <= s1.total_cycles * 1.05
        assert dyn.total_cycles <= s2.total_cycles * 1.05

    def test_all_models_execute_correctly(self, tiny_dataset, tiny_config):
        data = tiny_dataset
        for name in ["GraphSAGE", "GIN", "SGC"]:
            model = build_model(name, data.num_features, 8, data.num_classes)
            weights = init_weights(model, seed=9)
            program = Compiler(tiny_config).compile(model, data, weights)
            result = run_strategy(program, "Dynamic")
            ref = reference_inference(model, data.a, data.h0, weights)
            np.testing.assert_allclose(
                result.output_dense(), ref, rtol=1e-3, atol=2e-4,
                err_msg=f"{name} output mismatch",
            )

    def test_mismatched_configs_rejected(self, gcn_setup, tiny_config):
        _, _, _, program = gcn_setup
        acc = Accelerator(tiny_config.replace(psys=8))
        with pytest.raises(ValueError):
            RuntimeSystem(acc, make_strategy("Dynamic", tiny_config))


class TestReportFormatting:
    def test_format_report_contains_kernels(self, gcn_setup):
        _, _, _, program = gcn_setup
        result = run_strategy(program, "Dynamic")
        report = result.format_report()
        for ks in result.kernel_stats:
            assert ks.kernel_id in report
        assert "latency" in report and "Dynamic" in report

    def test_fixed_spmm_strategy_correct(self, gcn_setup):
        from repro.gnn import reference_inference

        data, model, weights, program = gcn_setup
        result = run_strategy(program, "Fixed-SPMM")
        ref = reference_inference(model, data.a, data.h0, weights)
        import numpy as np

        np.testing.assert_allclose(
            result.output_dense(), ref, rtol=1e-3, atol=1e-5
        )

"""Tests for density profiling and the Fig. 5 partitioning."""

import numpy as np
import pytest
import scipy.sparse as sp

from conftest import random_sparse
from repro.formats.coo import COOMatrix
from repro.formats.dense import DenseMatrix
from repro.formats.density import SparsityProfiler, density, nnz_count
from repro.formats.partition import (
    PartitionedMatrix,
    block_nnz_grid,
    grid_dims,
    partition_adjacency,
    partition_features,
    partition_weights,
)


class TestDensity:
    def test_ndarray(self):
        assert density(np.array([[1, 0], [0, 1]])) == pytest.approx(0.5)

    def test_scipy(self):
        mat = sp.eye(10, format="csr")
        assert density(mat) == pytest.approx(0.1)

    def test_scipy_with_stored_zeros(self):
        mat = sp.csr_matrix((np.array([0.0, 1.0]), ([0, 1], [0, 1])), shape=(2, 2))
        assert nnz_count(mat) == 1  # explicit zero not counted

    def test_wrappers(self):
        d = DenseMatrix(np.eye(4, dtype=np.float32))
        c = COOMatrix.from_dense(np.eye(4, dtype=np.float32))
        assert density(d) == density(c) == pytest.approx(0.25)

    def test_empty(self):
        assert density(np.zeros((0, 3))) == 0.0


class TestSparsityProfiler:
    def test_profile_dense(self):
        prof = SparsityProfiler(width=4)
        rep = prof.profile(np.array([[1, 0, 2, 0]], dtype=np.float32))
        assert rep.nnz == 2
        assert rep.density == pytest.approx(0.5)
        assert rep.cycles == 1 + prof.adder_tree_depth

    def test_profile_sparse_streams_nnz_only(self):
        prof = SparsityProfiler(width=4)
        mat = sp.eye(100, format="csr", dtype=np.float32)
        rep = prof.profile(mat)
        assert rep.nnz == 100
        assert rep.cycles == 25 + prof.adder_tree_depth

    def test_adder_tree_depth(self):
        assert SparsityProfiler(width=16).adder_tree_depth == 4

    def test_zero_elements(self):
        assert SparsityProfiler(width=8).cycles_for(0) == 0

    def test_bad_width(self):
        with pytest.raises(ValueError):
            SparsityProfiler(width=6)


class TestGridHelpers:
    def test_grid_dims(self):
        assert grid_dims((10, 7), 4, 3) == (3, 3)
        assert grid_dims((8, 8), 4, 4) == (2, 2)
        assert grid_dims((0, 5), 4, 4) == (0, 2)

    def test_block_nnz_grid_dense(self):
        mat = np.zeros((4, 4), dtype=np.float32)
        mat[0, 0] = 1
        mat[3, 3] = 2
        grid = block_nnz_grid(mat, 2, 2)
        np.testing.assert_array_equal(grid, [[1, 0], [0, 1]])

    def test_block_nnz_grid_sparse_matches_dense(self):
        mat = random_sparse(23, 17, 0.2, seed=4)
        g1 = block_nnz_grid(mat, 5, 4)
        g2 = block_nnz_grid(mat.toarray(), 5, 4)
        np.testing.assert_array_equal(g1, g2)

    def test_total_nnz_conserved(self):
        mat = random_sparse(31, 29, 0.1, seed=5)
        grid = block_nnz_grid(mat, 7, 6)
        assert grid.sum() == mat.nnz


class TestPartitionedMatrix:
    def test_block_extraction_sparse(self):
        mat = random_sparse(20, 16, 0.3, seed=6)
        pm = PartitionedMatrix(mat, 8, 8)
        assert pm.num_row_blocks == 3
        assert pm.num_col_blocks == 2
        blk = pm.dense_block(1, 1)
        np.testing.assert_array_equal(blk, mat.toarray()[8:16, 8:16])

    def test_ragged_edge_blocks(self):
        mat = np.arange(15, dtype=np.float32).reshape(5, 3)
        pm = PartitionedMatrix(mat, 4, 2)
        assert pm.block_shape(1, 1) == (1, 1)
        np.testing.assert_array_equal(pm.dense_block(1, 0), mat[4:5, 0:2])

    def test_reassembly_roundtrip(self):
        mat = random_sparse(17, 23, 0.25, seed=9)
        pm = PartitionedMatrix(mat, 5, 7)
        np.testing.assert_allclose(pm.reassemble_from_blocks(), mat.toarray())

    def test_block_density_and_nnz(self):
        mat = np.zeros((4, 4), dtype=np.float32)
        mat[:2, :2] = 1.0
        pm = PartitionedMatrix(mat, 2, 2)
        assert pm.block_nnz(0, 0) == 4
        assert pm.block_density(0, 0) == pytest.approx(1.0)
        assert pm.block_density(1, 1) == 0.0

    def test_density_grid_matches_scalar_queries(self):
        mat = random_sparse(19, 13, 0.2, seed=10)
        pm = PartitionedMatrix(mat, 6, 5)
        grid = pm.density_grid
        for i in range(pm.num_row_blocks):
            for j in range(pm.num_col_blocks):
                assert grid[i, j] == pytest.approx(pm.block_density(i, j))

    def test_block_sizes(self):
        pm = PartitionedMatrix(np.zeros((10, 7), dtype=np.float32), 4, 3)
        np.testing.assert_array_equal(pm.row_block_sizes, [4, 4, 2])
        np.testing.assert_array_equal(pm.col_block_sizes, [3, 3, 1])

    def test_block_bytes_policy(self):
        mat = np.zeros((8, 8), dtype=np.float32)
        mat[0, 0] = 1.0
        pm = PartitionedMatrix(mat, 8, 8)
        assert pm.block_bytes(0, 0, sparse=True) == 12
        assert pm.block_bytes(0, 0, sparse=False) == 256
        assert pm.block_bytes(0, 0) == 12  # picks cheaper

    def test_out_of_range_block(self):
        pm = PartitionedMatrix(np.zeros((4, 4), dtype=np.float32), 2, 2)
        with pytest.raises(IndexError):
            pm.block(2, 0)

    def test_invalid_block_dims(self):
        with pytest.raises(ValueError):
            PartitionedMatrix(np.zeros((4, 4)), 0, 2)

    def test_stripe_cache_consistency(self):
        mat = random_sparse(40, 40, 0.1, seed=11)
        pm = PartitionedMatrix(mat, 8, 8)
        # access twice: second hit comes from the stripe cache
        b1 = pm.dense_block(2, 3)
        b2 = pm.dense_block(2, 3)
        np.testing.assert_array_equal(b1, b2)
        np.testing.assert_array_equal(b1, mat.toarray()[16:24, 24:32])


class TestFig5Partitioners:
    def test_adjacency_blocks_square(self):
        a = random_sparse(30, 30, 0.1, seed=12)
        pm = partition_adjacency(a, 8)
        assert (pm.block_rows, pm.block_cols) == (8, 8)
        assert pm.name == "A"

    def test_feature_fibers_and_subfibers(self):
        h = np.ones((30, 12), dtype=np.float32)
        fibers = partition_features(h, 8, 4)
        assert (fibers.block_rows, fibers.block_cols) == (8, 4)
        subfibers = partition_features(h, 8, 4, as_subfibers=True)
        assert (subfibers.block_rows, subfibers.block_cols) == (4, 4)

    def test_weight_blocks(self):
        w = np.ones((12, 8), dtype=np.float32)
        pm = partition_weights(w, 4)
        assert (pm.block_rows, pm.block_cols) == (4, 4)
        assert pm.num_blocks == 6

    def test_fiber_and_subfiber_views_share_bytes(self):
        """The same H can be viewed as fibers or subfibers without copy."""
        h = random_sparse(16, 8, 0.5, seed=13)
        fibers = partition_features(h, 8, 4)
        subs = partition_features(h, 8, 4, as_subfibers=True)
        # subfiber (2,1) and (3,1) concatenated == fiber (1,1)
        top = subs.dense_block(2, 1)
        bot = subs.dense_block(3, 1)
        np.testing.assert_array_equal(
            np.vstack([top, bot]), fibers.dense_block(1, 1)
        )

"""Tests for the IR: kernels (Table II), graphs, execution schemes."""

import pytest

from repro.ir.graph import ComputationGraph, CycleError
from repro.ir.kernel import Activation, AggOp, KernelIR, KernelType
from repro.ir.scheme import build_scheme, count_tasks, generate_tasks


def mk_kernel(kid="k0", ktype=KernelType.UPDATE, fin=8, fout=4, v=32, e=64,
              x="H0", y="W1", out="H1", **kw):
    return KernelIR(
        kernel_id=kid, layer_id=1, ktype=ktype, input_dim=fin, output_dim=fout,
        num_vertices=v, num_edges=e, x_name=x, y_name=y, out_name=out, **kw,
    )


class TestKernelIR:
    def test_table_ii_fields(self):
        k = mk_kernel(agg_op=AggOp.MEAN, activation=Activation.RELU,
                      activation_enabled=True)
        assert k.is_update and not k.is_aggregate
        assert k.agg_op is AggOp.MEAN
        assert k.workload == 32 * 4
        assert "ReLU" in k.describe()

    def test_validation(self):
        with pytest.raises(ValueError):
            mk_kernel(fin=0)
        with pytest.raises(ValueError):
            mk_kernel(v=0)
        with pytest.raises(ValueError):
            mk_kernel(kid="")


class TestComputationGraph:
    def build_chain(self):
        g = ComputationGraph()
        g.add_kernel(mk_kernel("a", x="H0", y="W1", out="T1"))
        g.add_kernel(mk_kernel("b", ktype=KernelType.AGGREGATE, x="A", y="T1", out="H1"))
        g.add_kernel(mk_kernel("c", x="H1", y="W2", out="H_out"))
        g.infer_dependencies()
        return g

    def test_topo_order(self):
        g = self.build_chain()
        order = [k.kernel_id for k in g.topo_order()]
        assert order == ["a", "b", "c"]

    def test_infer_dependencies(self):
        g = self.build_chain()
        assert g.successors("a") == ["b"]
        assert g.predecessors("c") == ["b"]

    def test_duplicate_id_rejected(self):
        g = ComputationGraph()
        g.add_kernel(mk_kernel("a"))
        with pytest.raises(ValueError):
            g.add_kernel(mk_kernel("a"))

    def test_unknown_dependency_rejected(self):
        g = ComputationGraph()
        g.add_kernel(mk_kernel("a"))
        with pytest.raises(KeyError):
            g.add_dependency("a", "nope")

    def test_cycle_detected(self):
        g = ComputationGraph()
        g.add_kernel(mk_kernel("a", x="H1", out="T1"))
        g.add_kernel(mk_kernel("b", x="T1", out="H1"))
        g.add_dependency("a", "b")
        g.add_dependency("b", "a")
        with pytest.raises(CycleError):
            g.topo_order()

    def test_accumulate_into_dependency(self):
        g = ComputationGraph()
        g.add_kernel(mk_kernel("root", out="H1_root"))
        g.add_kernel(mk_kernel("neigh", out="H1", accumulate_into="H1_root"))
        g.infer_dependencies()
        assert g.predecessors("neigh") == ["root"]

    def test_layers_grouping(self):
        g = self.build_chain()
        ids = {k.kernel_id for k in g.layers()[1]}
        assert ids == {k.kernel_id for k in g.kernels()}


class TestExecutionScheme:
    def test_aggregate_scheme_algorithm2(self):
        k = mk_kernel(ktype=KernelType.AGGREGATE, fin=8, fout=8, v=32,
                      x="A", y="H0", out="H1")
        s = build_scheme(k, n1=8, n2=4)
        # T_a = (V/N1) * (f/N2) = 4 * 2 tasks, K = V/N1 = 4 pairs each
        assert s.num_tasks == 8
        assert s.pairs_per_task == 4
        assert s.x_blocking == (8, 8)
        assert s.y_blocking == (8, 4)
        assert s.out_blocking == (8, 4)

    def test_update_scheme_algorithm3(self):
        k = mk_kernel(ktype=KernelType.UPDATE, fin=8, fout=4, v=32)
        s = build_scheme(k, n1=8, n2=4)
        # T_u = (V/N2) * (f2/N2) = 8 * 1, K = f1/N2 = 2
        assert s.num_tasks == 8
        assert s.pairs_per_task == 2
        assert s.x_blocking == (4, 4)
        assert s.y_blocking == (4, 4)

    def test_ragged_dims_ceil(self):
        k = mk_kernel(ktype=KernelType.AGGREGATE, fin=9, fout=9, v=33,
                      x="A", y="H0")
        s = build_scheme(k, n1=8, n2=4)
        assert s.out_grid == (5, 3)
        assert s.inner_blocks == 5

    def test_tasks_cover_output_grid_exactly_once(self):
        k = mk_kernel(ktype=KernelType.UPDATE, fin=12, fout=8, v=20)
        tasks = generate_tasks(k, n1=8, n2=4)
        coords = {(t.out_row, t.out_col) for t in tasks}
        assert len(coords) == len(tasks)
        assert coords == {(i, j) for i in range(5) for j in range(2)}

    def test_pairs_index_inner_dimension(self):
        k = mk_kernel(ktype=KernelType.UPDATE, fin=12, fout=4, v=8)
        tasks = generate_tasks(k, n1=8, n2=4)
        for t in tasks:
            assert [p[0] for p in t.pairs] == [0, 1, 2]

    def test_count_matches_materialisation(self):
        k = mk_kernel(ktype=KernelType.AGGREGATE, fin=16, fout=16, v=64,
                      x="A", y="H0")
        assert count_tasks(k, 8, 8) == len(generate_tasks(k, 8, 8))

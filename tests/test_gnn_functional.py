"""Tests for adjacency normalisations, activations, reference inference
and pruning."""

import numpy as np
import pytest
import scipy.sparse as sp
from hypothesis import given, settings, strategies as st

from conftest import random_sparse
from repro.gnn.activations import activation_fn, apply_activation, prelu, relu
from repro.gnn.adjacency import (
    build_adjacency_variants,
    gcn_norm,
    gin_adj,
    mean_norm,
)
from repro.gnn.functional import layerwise_feature_densities, reference_inference
from repro.gnn.models import build_gcn, build_model, init_weights
from repro.gnn.pruning import prune_to_sparsity, prune_weights, weight_density
from repro.ir.kernel import Activation


class TestAdjacency:
    def test_gcn_norm_symmetric_and_selfloops(self):
        a = random_sparse(20, 20, 0.1, seed=1)
        a = ((a + a.T) > 0).astype(np.float32)
        a.setdiag(0)
        a.eliminate_zeros()
        ah = gcn_norm(a)
        assert ah.diagonal().min() > 0  # self loops present
        diff = np.abs((ah - ah.T)).max()
        assert diff < 1e-6  # symmetric normalisation of symmetric input

    def test_gcn_norm_row_isolated_vertex(self):
        a = sp.csr_matrix((3, 3), dtype=np.float32)
        ah = gcn_norm(a)
        # isolated vertices keep exactly their self loop, normalised to 1
        np.testing.assert_allclose(ah.toarray(), np.eye(3), rtol=1e-6)

    def test_mean_norm_rows_sum_to_one(self):
        a = random_sparse(15, 15, 0.2, seed=2, zero_rows=True)
        am = mean_norm(a)
        sums = np.asarray(am.sum(axis=1)).ravel()
        nz_rows = np.diff(a.indptr) > 0
        np.testing.assert_allclose(sums[nz_rows], 1.0, rtol=1e-5)
        assert np.all(sums[~nz_rows] == 0)

    def test_gin_adj_self_weight(self):
        a = sp.csr_matrix((2, 2), dtype=np.float32)
        g = gin_adj(a, eps=0.5)
        np.testing.assert_allclose(g.toarray(), 1.5 * np.eye(2))

    def test_variant_builder(self):
        a = random_sparse(10, 10, 0.2, seed=3)
        out = build_adjacency_variants(a, {"A_norm", "A_gin"})
        assert set(out) == {"A_norm", "A_gin"}
        with pytest.raises(KeyError):
            build_adjacency_variants(a, {"A_bogus"})


class TestActivations:
    def test_relu(self):
        x = np.array([-1.0, 0.0, 2.0], dtype=np.float32)
        np.testing.assert_array_equal(relu(x), [0, 0, 2])

    def test_prelu(self):
        x = np.array([-2.0, 4.0], dtype=np.float32)
        np.testing.assert_allclose(prelu(x, 0.1), [-0.2, 4.0], rtol=1e-6)

    def test_dispatch(self):
        assert activation_fn(Activation.NONE) is None
        assert activation_fn(Activation.RELU) is relu
        x = np.array([-1.0], dtype=np.float32)
        assert apply_activation(Activation.PRELU, x, 0.5)[0] == pytest.approx(-0.5)
        np.testing.assert_array_equal(apply_activation(Activation.NONE, x), x)


class TestReferenceInference:
    def test_gcn_formula_direct(self, tiny_graph):
        """reference_inference(GCN) == the literal Kipf formula."""
        a, h0 = tiny_graph
        model = build_gcn(h0.shape[1], 8, 3)
        w = init_weights(model, seed=4)
        out = reference_inference(model, a, h0, w)
        ah = gcn_norm(a)
        expect = ah @ np.maximum(ah @ (h0.toarray() @ w["W1"]), 0) @ w["W2"]
        np.testing.assert_allclose(out, np.asarray(expect), rtol=1e-4, atol=1e-6)

    @pytest.mark.parametrize("name", ["GCN", "GraphSAGE", "GIN", "SGC"])
    def test_shapes_and_dtype(self, tiny_graph, name):
        a, h0 = tiny_graph
        model = build_model(name, h0.shape[1], 8, 5)
        out = reference_inference(model, a, h0, init_weights(model))
        assert out.shape == (a.shape[0], 5)
        assert out.dtype == np.float32

    def test_layerwise_densities_fig2_stages(self, tiny_graph):
        a, h0 = tiny_graph
        model = build_gcn(h0.shape[1], 8, 3)
        stages = layerwise_feature_densities(model, a, h0, init_weights(model))
        assert len(stages) == 5  # input + 2 per layer
        assert stages[0][0] == "input"
        for _, d in stages:
            assert 0.0 <= d <= 1.0
        # the Update densifies the sparse input features
        assert stages[1][1] > stages[0][1]

    def test_layerwise_densities_gcn_only(self, tiny_graph):
        a, h0 = tiny_graph
        model = build_model("GIN", h0.shape[1], 8, 3)
        with pytest.raises(ValueError):
            layerwise_feature_densities(model, a, h0, init_weights(model))


class TestPruning:
    def test_exact_sparsity(self):
        w = np.random.default_rng(0).normal(size=(40, 25)).astype(np.float32)
        for s in [0.0, 0.3, 0.77, 1.0]:
            pruned = prune_to_sparsity(w, s)
            zeros = pruned.size - np.count_nonzero(pruned)
            assert zeros == int(round(s * w.size))

    def test_magnitude_order_preserved(self):
        w = np.array([[0.1, -5.0], [2.0, -0.01]], dtype=np.float32)
        pruned = prune_to_sparsity(w, 0.5)
        # the two smallest magnitudes die
        np.testing.assert_array_equal(
            pruned, np.array([[0.0, -5.0], [2.0, 0.0]], dtype=np.float32)
        )

    def test_input_not_mutated(self):
        w = np.ones((4, 4), dtype=np.float32)
        prune_to_sparsity(w, 0.5)
        assert np.count_nonzero(w) == 16

    def test_invalid_sparsity(self):
        with pytest.raises(ValueError):
            prune_to_sparsity(np.ones((2, 2)), 1.5)

    def test_prune_weights_dict(self):
        model = build_gcn(30, 20, 10)
        w = init_weights(model, seed=1)
        pruned = prune_weights(w, 0.9)
        assert weight_density(pruned) == pytest.approx(0.1, abs=0.01)

    @given(st.floats(0.0, 1.0, allow_nan=False))
    @settings(max_examples=40, deadline=None)
    def test_density_complement_property(self, sparsity):
        w = np.random.default_rng(3).normal(size=(20, 20)).astype(np.float32)
        pruned = prune_to_sparsity(w, sparsity)
        density = np.count_nonzero(pruned) / pruned.size
        assert density == pytest.approx(1.0 - sparsity, abs=1.5 / pruned.size)

"""The vectorised task loop vs the per-task reference loop.

The whole-layer structure-of-arrays pass of
:mod:`repro.runtime.vectorized` is only admissible because it is
*bit-exact* against :func:`~repro.runtime.executor
.execute_kernel_tasks_reference`: same outputs, CycleReport totals,
primitive counts, wave counts and timeline events.  These tests pin that
contract across models, strategies, datasets and sharding, plus the
supporting machinery (TaskBatch SoA, stripe block splitting, the
count-capped sorted balancer) and the active-core accounting bugfix the
vectorised rewrite surfaced.
"""

import numpy as np
import pytest
import scipy.sparse as sp
from hypothesis import given, settings, strategies as st

from repro.compiler import Compiler
from repro.datasets import load_dataset
from repro.datasets.catalog import DatasetSpec, GraphData
from repro.formats.dense import DTYPE
from repro.formats.partition import PartitionedMatrix
from repro.gnn import build_model, init_weights
from repro.hw import Accelerator
from repro.hw.report import CycleReport
from repro.ir.scheme import TaskBatch
from repro.runtime import (
    CoreTimeline,
    execute_kernel_tasks,
    execute_kernel_tasks_reference,
    execute_kernel_tasks_vectorised,
    make_strategy,
    wave_fill_schedule,
)
from repro.runtime.executor import KernelAssembly, run_strategy

from conftest import make_tiny_config


def _dense(o):
    return o.toarray() if sp.issparse(o) else np.asarray(o)


def _events(result):
    return [
        (e.core, e.start, e.end, e.kernel_id, e.task_index)
        for e in result.timeline_events
    ]


def assert_results_identical(rv, rr):
    """Bit-exact equality of two InferenceResults (no tolerances)."""
    np.testing.assert_array_equal(_dense(rv.output), _dense(rr.output))
    assert rv.accel_cycles == rr.accel_cycles
    assert rv.exposed_overhead_cycles == rr.exposed_overhead_cycles
    assert rv.runtime_overhead_seconds == rr.runtime_overhead_seconds
    assert _events(rv) == _events(rr)
    for kv, kr in zip(rv.kernel_stats, rr.kernel_stats):
        for f in (
            "cycles", "macs", "bytes_read", "bytes_written",
            "compute_cycles", "memory_cycles", "transform_cycles",
            "profile_cycles", "out_density", "analysis_seconds",
            "num_waves", "tasks_executed", "num_pairs",
        ):
            assert getattr(kv, f) == getattr(kr, f), (kv.kernel_id, f)
        assert kv.primitive_counts == kr.primitive_counts
        np.testing.assert_array_equal(kv.core_busy, kr.core_busy)


def zero_slab_data(num_vertices=64, num_features=24, seed=0):
    """A graph whose adjacency has an all-zero row slab (vertices 16..47)
    wider than the partition size, so whole output partitions of the
    Aggregate kernel carry no work and the runtime skips their tasks."""
    rng = np.random.default_rng(seed)
    a = sp.random(
        num_vertices, num_vertices, density=0.15, format="lil",
        dtype=np.float32, rng=rng,
    )
    a[16:48, :] = 0
    a = a.tocsr()
    a.data = rng.uniform(0.5, 1.5, a.data.shape).astype(np.float32)
    a.eliminate_zeros()
    h0 = rng.uniform(-1, 1, size=(num_vertices, num_features)).astype(DTYPE)
    spec = DatasetSpec(
        "ZS", "ZeroSlab", num_vertices, int(a.nnz), num_features,
        4, 0.1, 1.0, 8, False,
    )
    return GraphData(name="ZS", a=a, h0=h0, spec=spec, scale=1.0, seed=seed)


@pytest.fixture(scope="module")
def co_programs():
    data = load_dataset("CO", scale=0.15, seed=3)
    cfg = make_tiny_config()
    out = {}
    for model_name in ("GCN", "GIN"):
        model = build_model(
            model_name, data.num_features, data.hidden_dim, data.num_classes
        )
        weights = init_weights(model, seed=5)
        out[model_name] = Compiler(cfg).compile(model, data, weights)
    return out


@pytest.fixture(scope="module")
def zero_slab_program():
    # GraphSAGE's mean aggregation (D^-1 A) adds no self-loops, so the
    # zero row slab survives preprocessing and produces skipped tasks
    data = zero_slab_data()
    cfg = make_tiny_config()
    model = build_model(
        "GraphSAGE", data.num_features, data.hidden_dim, data.num_classes
    )
    weights = init_weights(model, seed=7)
    return Compiler(cfg).compile(model, data, weights)


class TestBitExactness:
    @pytest.mark.parametrize("model_name", ["GCN", "GIN"])
    @pytest.mark.parametrize(
        "strategy", ["Dynamic", "S1", "S2", "Oracle", "Fixed-GEMM"]
    )
    def test_matches_reference(self, co_programs, model_name, strategy):
        program = co_programs[model_name]
        rv = run_strategy(program, strategy, vectorised=True)
        rr = run_strategy(program, strategy, vectorised=False)
        assert_results_identical(rv, rr)

    def test_matches_reference_with_skipped_tasks(self, zero_slab_program):
        rv = run_strategy(zero_slab_program, "Dynamic", vectorised=True)
        rr = run_strategy(zero_slab_program, "Dynamic", vectorised=False)
        assert_results_identical(rv, rr)
        # the slab really does knock out whole tasks
        assert any(
            ks.tasks_executed < ks.num_tasks for ks in rv.kernel_stats
        )

    def test_sharded_matches_reference(self, co_programs):
        from repro.engine.pool import AcceleratorPool
        from repro.shard import ShardedRuntime, plan_shards

        program = co_programs["GCN"]
        cfg = program.config
        plan = plan_shards(program, 2)
        strategy = make_strategy("Dynamic", cfg)
        rv = ShardedRuntime(
            AcceleratorPool(cfg, 2), strategy, plan, vectorised=True
        ).run(program)
        rr = ShardedRuntime(
            AcceleratorPool(cfg, 2), strategy, plan, vectorised=False
        ).run(program)
        np.testing.assert_array_equal(_dense(rv.output), _dense(rr.output))
        assert rv.latency_s == rr.latency_s
        for kv, kr in zip(rv.kernel_stats, rr.kernel_stats):
            np.testing.assert_array_equal(kv.shard_cycles, kr.shard_cycles)
            np.testing.assert_array_equal(kv.shard_seconds, kr.shard_seconds)


def _loop_args(program, kernel, acc, tasks):
    """Plumbing for a direct execute_kernel_tasks call on one kernel."""
    scheme = kernel.exec_scheme
    xv = program.view(kernel.x_name, *scheme.x_blocking)
    yv = program.view(kernel.y_name, *scheme.y_blocking)
    assembly = KernelAssembly.for_kernel(xv, yv, scheme)
    timeline = CoreTimeline(acc.num_cores)
    return (
        kernel, xv, yv,
        program.stored_sparse[kernel.x_name],
        program.stored_sparse[kernel.y_name],
        acc, make_strategy("Dynamic", acc.config), timeline,
        tasks, assembly, None, None,
    )


def _first_input_kernel(program):
    """The first kernel whose operands are both program inputs and that
    carries no accumulate view (so it can run standalone)."""
    for kernel in program.graph.topo_order():
        if kernel.accumulate_into:
            continue
        return kernel
    raise AssertionError("no standalone kernel in program")


def _aggregate_kernel(program):
    """The first Aggregate kernel (adjacency x input features)."""
    from repro.ir.kernel import KernelType

    for kernel in program.graph.topo_order():
        if kernel.ktype is KernelType.AGGREGATE and not kernel.accumulate_into:
            return kernel
    raise AssertionError("no standalone aggregate kernel in program")


class TestActiveCoreAccounting:
    """Skipped (all-zero) partitions must not inflate the DDR share.

    The reference loop historically set ``active_cores`` from
    ``len(tasks)``; with whole output partitions skipped, fewer tasks
    ever reach a core, so the per-core DDR bandwidth share was
    understated.  Both paths now count *dispatched* tasks.
    """

    @pytest.mark.parametrize("vectorised", [True, False])
    def test_active_cores_counts_dispatched_only(
        self, zero_slab_program, vectorised
    ):
        program = zero_slab_program
        kernel = _aggregate_kernel(program)
        acc = Accelerator(program.config)
        args = _loop_args(program, kernel, acc, kernel.exec_scheme.tasks())
        stats = execute_kernel_tasks(*args, vectorised=vectorised)
        assert stats.tasks_executed < len(kernel.exec_scheme.tasks())
        expected = min(acc.num_cores, stats.tasks_executed)
        for core in acc.cores:
            assert core.active_cores == expected

    def test_single_dispatched_task_gets_full_bandwidth(
        self, zero_slab_program
    ):
        # slice the task grid down to one live task (plus the skipped
        # ones): with only one task dispatched, it must see the whole
        # DDR bandwidth even though len(tasks) > 1
        program = zero_slab_program
        kernel = _aggregate_kernel(program)
        scheme = kernel.exec_scheme
        acc = Accelerator(program.config)
        all_tasks = scheme.tasks()
        args = _loop_args(program, kernel, acc, all_tasks)
        stats = execute_kernel_tasks(*args)
        dispatched_rows = {
            all_tasks[e.task_index].out_row
            for e in args[7].events
        }
        live_row = min(dispatched_rows)
        skipped_row = next(
            t.out_row for t in all_tasks if t.out_row not in dispatched_rows
        )
        subset = [
            t for t in all_tasks if t.out_row in (live_row, skipped_row)
        ]
        subset = [t for t in subset if t.out_col == all_tasks[0].out_col]
        assert len(subset) == 2
        acc2 = Accelerator(program.config)
        args2 = _loop_args(program, kernel, acc2, subset)
        stats2 = execute_kernel_tasks(*args2)
        assert stats2.tasks_executed == 1
        for core in acc2.cores:
            assert core.active_cores == 1


class TestTaskBatch:
    def test_closed_form_matches_from_tasks(self, co_programs):
        for kernel in co_programs["GCN"].graph.topo_order():
            scheme = kernel.exec_scheme
            got = scheme.task_batch()
            want = TaskBatch.from_tasks(scheme.tasks())
            np.testing.assert_array_equal(got.rows, want.rows)
            np.testing.assert_array_equal(got.cols, want.cols)
            np.testing.assert_array_equal(got.js, want.js)
            np.testing.assert_array_equal(got.starts, want.starts)
            assert got is scheme.task_batch()  # cached

    def test_subset_matches_filtered_from_tasks(self, co_programs):
        scheme = co_programs["GCN"].graph.topo_order()[0].exec_scheme
        tasks = scheme.tasks()
        batch = scheme.task_batch()
        rng = np.random.default_rng(0)
        mask = rng.random(len(tasks)) < 0.5
        sub = batch.subset(mask)
        want = TaskBatch.from_tasks(
            [t for t, m in zip(tasks, mask) if m]
        )
        np.testing.assert_array_equal(sub.rows, want.rows)
        np.testing.assert_array_equal(sub.cols, want.cols)
        np.testing.assert_array_equal(sub.js, want.js)
        np.testing.assert_array_equal(sub.starts, want.starts)


class TestCsrBlocksForRow:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_blocks_bit_identical_to_block(self, seed):
        rng = np.random.default_rng(seed)
        m, n = 57, 43
        mat = sp.random(m, n, density=0.2, format="csr", dtype=np.float32,
                        rng=rng)
        pm = PartitionedMatrix(mat, 16, 12)
        for i in range(pm.num_row_blocks):
            blocks = pm.csr_blocks_for_row(i)
            assert len(blocks) == pm.num_col_blocks
            for j, blk in enumerate(blocks):
                ref = pm.block(i, j)
                assert blk.shape == ref.shape
                np.testing.assert_array_equal(blk.indptr, ref.indptr)
                np.testing.assert_array_equal(blk.indices, ref.indices)
                np.testing.assert_array_equal(blk.data, ref.data)

    def test_dense_storage_rejected(self):
        pm = PartitionedMatrix(np.ones((8, 8), dtype=DTYPE), 4, 4)
        with pytest.raises(TypeError, match="sparse storage"):
            pm.csr_blocks_for_row(0)

    def test_cache_invalidated_by_structural_delta(self):
        rng = np.random.default_rng(3)
        mat = sp.random(32, 32, density=0.2, format="csr",
                        dtype=np.float32, rng=rng)
        pm = PartitionedMatrix(mat, 8, 8)
        before = pm.csr_blocks_for_row(0)[0].toarray()
        new = mat.tolil()
        new[0, 0] = 2.5
        added = np.array([[0, 0]]) if mat[0, 0] == 0 else np.empty((0, 2))
        pm.apply_structural_delta(
            new.tocsr(),
            added_rows=added[:, 0].astype(np.int64),
            added_cols=added[:, 1].astype(np.int64),
            removed_rows=np.empty(0, dtype=np.int64),
            removed_cols=np.empty(0, dtype=np.int64),
        )
        after = pm.csr_blocks_for_row(0)[0].toarray()
        assert after[0, 0] == np.float32(2.5)
        assert not np.array_equal(before, after)


class TestDegenerateInputs:
    def test_empty_task_list(self, co_programs):
        program = co_programs["GCN"]
        kernel = _first_input_kernel(program)
        acc = Accelerator(program.config)
        args = _loop_args(program, kernel, acc, [])
        stats = execute_kernel_tasks(*args)
        assert stats.tasks_executed == 0
        assert stats.waves == 0
        assert stats.num_pairs == 0
        assert args[7].events == []

    def test_single_task(self, co_programs):
        program = co_programs["GCN"]
        kernel = _first_input_kernel(program)
        tasks = kernel.exec_scheme.tasks()[:1]
        accs = [Accelerator(program.config) for _ in range(2)]
        sv = execute_kernel_tasks_vectorised(
            *_loop_args(program, kernel, accs[0], tasks)
        )
        sr = execute_kernel_tasks_reference(
            *_loop_args(program, kernel, accs[1], tasks)
        )
        assert sv is not None
        assert sv.report == sr.report
        assert sv.counts == sr.counts
        assert sv.tasks_executed == sr.tasks_executed == 1

    def test_all_skip_kernel(self, zero_slab_program):
        # restrict to the zero slab's tasks: every pair SKIPs, nothing
        # dispatches, nothing is written
        program = zero_slab_program
        kernel = _aggregate_kernel(program)
        all_tasks = kernel.exec_scheme.tasks()
        acc = Accelerator(program.config)
        probe = _loop_args(program, kernel, acc, all_tasks)
        execute_kernel_tasks(*probe)
        dispatched_rows = {
            all_tasks[e.task_index].out_row for e in probe[7].events
        }
        dead = [t for t in all_tasks if t.out_row not in dispatched_rows]
        assert dead, "zero slab produced no dead tasks"
        acc2 = Accelerator(program.config)
        args = _loop_args(program, kernel, acc2, dead)
        stats = execute_kernel_tasks(*args)
        assert stats.tasks_executed == 0
        assert stats.report == CycleReport()
        assert args[7].events == []

    @given(seed=st.integers(0, 2**32 - 1))
    @settings(max_examples=15, deadline=None)
    def test_random_task_subsets_match(self, co_programs, seed):
        program = co_programs["GCN"]
        kernel = _first_input_kernel(program)
        all_tasks = kernel.exec_scheme.tasks()
        rng = np.random.default_rng(seed)
        mask = rng.random(len(all_tasks)) < rng.uniform(0.1, 0.9)
        subset = [t for t, m in zip(all_tasks, mask) if m]
        accs = [Accelerator(program.config) for _ in range(2)]
        av = _loop_args(program, kernel, accs[0], subset)
        ar = _loop_args(program, kernel, accs[1], subset)
        sv = execute_kernel_tasks_vectorised(*av)
        sr = execute_kernel_tasks_reference(*ar)
        assert sv is not None
        assert sv.report == sr.report
        assert sv.counts == sr.counts
        assert sv.waves == sr.waves
        evv = [(e.core, e.start, e.end, e.task_index) for e in av[7].events]
        evr = [(e.core, e.start, e.end, e.task_index) for e in ar[7].events]
        assert evv == evr


class TestSortedBalance:
    def test_sorted_never_needs_more_waves(self, co_programs):
        for model_name in ("GCN", "GIN"):
            program = co_programs[model_name]
            rf = run_strategy(program, "Dynamic", balance="fifo")
            rs = run_strategy(program, "Dynamic", balance="sorted")
            np.testing.assert_array_equal(
                _dense(rf.output), _dense(rs.output)
            )
            for kf, ks in zip(rf.kernel_stats, rs.kernel_stats):
                assert ks.num_waves <= kf.num_waves

    def test_unknown_balance_rejected(self, co_programs):
        with pytest.raises(ValueError, match="balance"):
            run_strategy(co_programs["GCN"], "Dynamic", balance="lpt")

    @given(
        durations=st.lists(st.floats(0.0, 1e6), min_size=1, max_size=64),
        cores=st.integers(1, 8),
    )
    @settings(max_examples=200, deadline=None)
    def test_wave_fill_respects_cap(self, durations, cores):
        d = np.asarray(durations)
        order, assigned = wave_fill_schedule(d, np.zeros(cores))
        # a permutation of all tasks...
        assert sorted(order.tolist()) == list(range(len(d)))
        # ...with no core taking more than ceil(E / C) tasks, which by
        # pigeonhole is what FIFO puts on its fullest core
        cap = -(len(d) // -cores)
        counts = np.bincount(assigned, minlength=cores)
        assert counts.max() <= cap

"""E10 — Fig. 14 + §VIII-D: speedup over PyG/DGL on CPU and GPU.

Compares Dynasparse's simulated accelerator latency against the roofline
models of the four framework/platform combinations (see
``repro.baselines.cpu_gpu`` for what is modelled vs measured), plus the
honestly-measured NumPy/SciPy reference on this machine.  End-to-end
latency (preprocessing + PCIe + execution) is reported per §VIII-D.

Paper geomeans (accelerator-latency speedups): PyG-CPU 306x, PyG-GPU
16.4x, DGL-CPU 141.9x, DGL-GPU 35x; end-to-end: 56.9x / 2.37x / 16.3x /
1.37x.  Expected shapes: CPU >> GPU latency, Dynasparse fastest, OOM
entries on NELL-GPU at full feature dimension.
"""

from _common import (
    DATASETS,
    Metric,
    emit,
    format_table,
    geomean,
    get_dataset,
    register_bench,
    run,
    sci,
    speedup_fmt,
)
from repro import build_model, init_weights
from repro.baselines import framework_latency, measured_reference_seconds

FW_NAMES = ("PyG-CPU", "DGL-CPU", "PyG-GPU", "DGL-GPU")
PAPER_GEOMEAN = {"PyG-CPU": 306.0, "DGL-CPU": 141.9, "PyG-GPU": 16.4, "DGL-GPU": 35.0}


@register_bench("fig14_cpu_gpu", tier="full", tags=("paper", "figure"))
def _spec(ctx):
    """Fig. 14: speedup over PyG/DGL roofline models (CPU and GPU)."""
    table, speedups = build_table()
    emit("fig14_cpu_gpu", table)
    return {
        f"geomean_{fw.lower().replace('-', '_')}": Metric(
            f"geomean_{fw.lower().replace('-', '_')}",
            geomean(speedups[fw]),
            "x",
            "higher",
        )
        for fw in FW_NAMES
        if speedups[fw]
    }


def collect():
    rows = []
    speedups = {fw: [] for fw in FW_NAMES}
    for ds in DATASETS:
        data = get_dataset(ds)
        model = build_model("GCN", data.num_features, data.hidden_dim,
                            data.num_classes)
        dyn = run("GCN", ds, "Dynamic")
        ref_s = measured_reference_seconds(
            model, data, init_weights(model, seed=7), repeats=1
        )
        row = [ds, sci(dyn.latency_ms)]
        for fw in FW_NAMES:
            t = framework_latency(fw, model, data)
            if t is None:
                row.append("OOM")
            else:
                ratio = (t * 1e3) / dyn.latency_ms
                speedups[fw].append(ratio)
                row.append(speedup_fmt(ratio))
        row.append(sci(ref_s * 1e3))
        row.append(sci(dyn.end_to_end_s * 1e3))
        rows.append(row)
    return rows, speedups


def build_table():
    rows, speedups = collect()
    gm = ["geomean", ""]
    for fw in FW_NAMES:
        gm.append(speedup_fmt(geomean(speedups[fw])) if speedups[fw] else "N/A")
    gm += ["", ""]
    paper = ["paper geomean", ""] + [
        speedup_fmt(PAPER_GEOMEAN[fw]) for fw in FW_NAMES
    ] + ["", ""]
    table = format_table(
        ["Dataset", "Dynasparse (ms)"]
        + [f"vs {fw}" for fw in FW_NAMES]
        + ["measured scipy (ms)", "end-to-end (ms)"],
        rows + [gm, paper],
        title="Fig. 14: GCN speedup over CPU/GPU frameworks "
              "(modelled rooflines; scipy column measured)",
    )
    return table, speedups


def test_fig14(benchmark):
    table, speedups = benchmark.pedantic(build_table, rounds=1, iterations=1)
    emit("fig14_cpu_gpu", table)
    # shapes: Dynasparse beats every framework on geomean; CPU frameworks
    # lose by much more than GPU frameworks; DGL-CPU beats PyG-CPU
    for fw in FW_NAMES:
        assert geomean(speedups[fw]) > 1.0, f"should beat {fw}"
    assert geomean(speedups["PyG-CPU"]) > geomean(speedups["PyG-GPU"])
    assert geomean(speedups["PyG-CPU"]) > geomean(speedups["DGL-CPU"])


def test_fig14_end_to_end(benchmark):
    """§VIII-D: even including preprocessing + PCIe, Dynasparse keeps a
    meaningful edge over the CPU frameworks."""

    def check():
        ratios = []
        for ds in ("CI", "CO", "PU"):
            data = get_dataset(ds)
            model = build_model("GCN", data.num_features, data.hidden_dim,
                                data.num_classes)
            t = framework_latency("PyG-CPU", model, data)
            e2e = run("GCN", ds, "Dynamic").end_to_end_s
            ratios.append(t / e2e)
        return ratios

    ratios = benchmark.pedantic(check, rounds=1, iterations=1)
    # end-to-end includes our (coarsely estimated) compile + PCIe terms,
    # which dominate at small scale; the paper's corresponding claim is
    # a 56.9x *best case* with a much smaller average margin
    assert geomean(ratios) > 0.65

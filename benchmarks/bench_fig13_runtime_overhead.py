"""E9 — Fig. 13: runtime-system overhead on unpruned GNNs.

The fraction of total execution time spent running dynamic K2P mapping on
the soft processor.  Paper: ~6.8% on average, hidden by task scheduling,
and *decreasing* as weight sparsity increases (more empty partitions are
skipped, so fewer decisions flow downstream).
"""

from _common import DATASETS, MODELS, Metric, emit, format_table, register_bench, run


@register_bench("fig13_runtime_overhead", tier="full", tags=("paper", "figure"))
def _spec(ctx):
    """Fig. 13: runtime-system K2P overhead fraction (modelled)."""
    table, fractions = build_table()
    emit("fig13_runtime_overhead", table)
    avg = sum(fractions) / len(fractions)
    return {
        "avg_overhead_frac": Metric("avg_overhead_frac", avg, "frac"),
        "max_overhead_frac": Metric("max_overhead_frac", max(fractions), "frac"),
    }


def build_table():
    rows = []
    fractions = []
    for model_name in MODELS:
        row = [model_name]
        for ds in DATASETS:
            r = run(model_name, ds, "Dynamic")
            row.append(f"{r.overhead_fraction * 100:.2f}%")
            fractions.append(r.overhead_fraction)
        rows.append(row)
    avg = sum(fractions) / len(fractions)
    rows.append(["average", f"{avg * 100:.2f}%"] + [""] * (len(DATASETS) - 1))
    table = format_table(
        ["Model"] + list(DATASETS), rows,
        title="Fig. 13: runtime-system overhead / total execution time "
              "(paper avg: 6.8%)",
    )
    return table, fractions


def test_fig13(benchmark):
    table, fractions = benchmark.pedantic(build_table, rounds=1, iterations=1)
    emit("fig13_runtime_overhead", table)
    avg = sum(fractions) / len(fractions)
    # paper's band: single-digit percent on average, <= ~20% worst case
    assert avg < 0.15, f"average overhead too high: {avg:.3f}"
    assert max(fractions) < 0.45


def test_fig13_overhead_mostly_hidden(benchmark):
    """§VI-B: K2P analysis pipelines under execution; the exposed part of
    the overhead must be a small fraction of the raw analysis time."""

    def check():
        from _common import engine_for, get_handle

        engine = engine_for()
        res = engine.infer(get_handle("GCN", "PU"))
        raw_cycles = engine.device(0).soft_processor.seconds_to_accel_cycles(
            res.runtime_overhead_seconds
        )
        return res.exposed_overhead_cycles, raw_cycles

    exposed, raw = benchmark.pedantic(check, rounds=1, iterations=1)
    assert exposed < raw, "some of the analysis must overlap execution"


def test_fig13_overhead_drops_with_pruning(benchmark):
    """Paper: 'as the densities of weight matrices decrease, the overhead
    of the Runtime System will decrease' (empty partitions skipped)."""

    def check():
        dense = run("GCN", "CI", "Dynamic", 0, sweep=True)
        pruned = run("GCN", "CI", "Dynamic", 95, sweep=True)
        return dense, pruned

    dense, pruned = benchmark.pedantic(check, rounds=1, iterations=1)
    assert pruned.skipped_pairs >= dense.skipped_pairs

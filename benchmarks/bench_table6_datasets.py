"""E3 — Table VI: dataset statistics.

Regenerates the paper's dataset-statistics table from the synthetic
generators and checks the columns the kernel-to-primitive machinery
depends on (density of A, density of H0) against the published values.
"""

import pytest

from _common import (
    DATASETS,
    Metric,
    emit,
    format_table,
    get_dataset,
    profile,
    register_bench,
)
from repro.datasets import TABLE_VI
from repro.formats.density import density


@register_bench("table6_datasets", tier="full", tags=("paper", "table"))
def _spec(ctx):
    """Table VI: dataset statistics (generated vs paper)."""
    emit("table6_datasets", build_table())
    co = get_dataset("CO")
    return {
        "density_H0_CO": Metric("density_H0_CO", density(co.h0), "frac"),
        "vertices_CO": Metric("vertices_CO", co.num_vertices, "count"),
    }


def build_table():
    rows = []
    for name in DATASETS:
        spec = TABLE_VI[name]
        data = get_dataset(name)
        rows.append(
            [
                name,
                f"{data.num_vertices:,}",
                f"{data.num_edges:,}",
                f"{data.num_features:,}",
                spec.classes,
                f"{density(data.a) * 100:.4f}%",
                f"{density(data.h0) * 100:.3f}%",
                f"{spec.a_density * 100:.4f}%",
                f"{spec.h0_density * 100:.3f}%",
                profile()[name][0],
            ]
        )
    return format_table(
        ["Dataset", "Vertices", "Edges(nnz A)", "Features", "Classes",
         "Density A", "Density H0", "paper A", "paper H0", "scale"],
        rows,
        title="Table VI: dataset statistics (generated vs paper)",
    )


def test_table6(benchmark):
    table = benchmark.pedantic(build_table, rounds=1, iterations=1)
    emit("table6_datasets", table)
    # feature densities must match the paper at any scale
    for name in DATASETS:
        data = get_dataset(name)
        assert density(data.h0) == pytest.approx(
            TABLE_VI[name].h0_density, rel=0.3
        )

"""Vectorised whole-layer task execution vs the per-task reference loop.

The PR this bench gates restructured ``execute_kernel_tasks`` from one
Python iteration per task (OperandSpec construction, per-pair cycle
models, per-task scheduling) into a single structure-of-arrays pass per
kernel (:mod:`repro.runtime.vectorized`): one batched Analyzer decide
over every (task, pair), batched operand byte/nnz arithmetic, grouped
cycle reductions and CSR-native stripe splitting.

The bench replays each kernel of a compiled inference — identical views,
task lists and accumulate state — through both loops on fresh
accelerators, asserts bit-exactness (outputs, CycleReport totals,
primitive counts, timeline events) and times the loops alone, excluding
the compile/view costs both paths share.  The committed baseline is the
repo's record that the rewrite landed and CI's guard that it stays in.
"""

import time

import numpy as np

from _common import Metric, emit, format_table, get_program, register_bench
from repro.hw import Accelerator
from repro.runtime import CoreTimeline
from repro.runtime.executor import (
    KernelAssembly,
    RuntimeSystem,
    execute_kernel_tasks_reference,
)
from repro.runtime.strategies import make_strategy
from repro.runtime.vectorized import execute_kernel_tasks_vectorised

REPEATS = 3

#: (dataset, model) per tier — smoke stays laptop-fast; full adds the
#: largest profile instances (Flickr, the Reddit generator and the
#: wide-feature synthetic).  PU is in both: it is the task-count-bound
#: cell where the loop rewrite dominates (the headline speedup); the
#: dense cells are BLAS-bound, so Amdahl caps their loop-replay gain
#: near 2-4x even though the loop itself shrank ~10x.
TIER_CELLS = {
    "smoke": (("PU", "GCN"),),
    "full": (
        ("PU", "GCN"),
        ("FL", "GCN"),
        ("RE", "GCN"),
        ("NE", "GCN"),
    ),
}


def _capture_kernel_calls(program):
    """One normal run, recording every ``execute_kernel_tasks`` call.

    The captured views/tasks/accumulate state are exactly what both loop
    variants consume, so replays differ only in the loop under test.
    """
    import repro.runtime.executor as executor_mod

    calls = []
    original = executor_mod.execute_kernel_tasks

    def recorder(kernel, xv, yv, x_ss, y_ss, acc, strategy, timeline,
                 tasks, assembly, acc_view, act, **kw):
        calls.append((kernel, xv, yv, x_ss, y_ss, tasks, acc_view, act))
        return original(kernel, xv, yv, x_ss, y_ss, acc, strategy,
                        timeline, tasks, assembly, acc_view, act, **kw)

    executor_mod.execute_kernel_tasks = recorder
    try:
        acc = Accelerator(program.config)
        RuntimeSystem(acc, make_strategy("Dynamic", acc.config)).run(program)
    finally:
        executor_mod.execute_kernel_tasks = original
    return calls


def _replay(calls, config, loop_fn):
    """Run every captured kernel through ``loop_fn`` on a fresh device.

    Returns (seconds, per-kernel stats, timeline events, outputs) — the
    full observable state the bit-exactness assertion compares.
    """
    acc = Accelerator(config)
    strategy = make_strategy("Dynamic", acc.config)
    timeline = CoreTimeline(acc.num_cores)
    stats_list, outputs = [], []
    t0 = time.perf_counter()
    for kernel, xv, yv, x_ss, y_ss, tasks, acc_view, act in calls:
        assembly = KernelAssembly.for_kernel(xv, yv, kernel.exec_scheme)
        stats = loop_fn(
            kernel, xv, yv, x_ss, y_ss, acc, strategy, timeline,
            tasks, assembly, acc_view, act,
        )
        assert stats is not None, "vectorised loop backed out unexpectedly"
        timeline.barrier()
        stats_list.append(stats)
        outputs.append(assembly.finalize()[0])
    elapsed = time.perf_counter() - t0
    events = [
        (e.core, e.start, e.end, e.kernel_id, e.task_index)
        for e in timeline.events
    ]
    return elapsed, stats_list, events, outputs


def _assert_bit_exact(ref, vec, label):
    _, ref_stats, ref_events, ref_outs = ref
    _, vec_stats, vec_events, vec_outs = vec
    assert ref_events == vec_events, f"{label}: timeline events differ"
    for sr, sv in zip(ref_stats, vec_stats):
        assert sr.report == sv.report, f"{label}: CycleReport differs"
        assert sr.counts == sv.counts, f"{label}: primitive counts differ"
        assert sr.waves == sv.waves, f"{label}: wave counts differ"
        assert sr.tasks_executed == sv.tasks_executed, label
    for zr, zv in zip(ref_outs, vec_outs):
        dr = zr.toarray() if hasattr(zr, "toarray") else zr
        dv = zv.toarray() if hasattr(zv, "toarray") else zv
        assert np.array_equal(dr, dv), f"{label}: outputs differ"


def _time_cell(ds, model):
    program = get_program(model, ds)
    calls = _capture_kernel_calls(program)
    ref = vec = None
    ref_s = vec_s = float("inf")
    for _ in range(REPEATS):
        vec = _replay(calls, program.config, execute_kernel_tasks_vectorised)
        vec_s = min(vec_s, vec[0])
    for _ in range(max(REPEATS - 1, 1)):
        ref = _replay(calls, program.config, execute_kernel_tasks_reference)
        ref_s = min(ref_s, ref[0])
    _assert_bit_exact(ref, vec, f"{ds}/{model}")
    return ref_s, vec_s


@register_bench(
    "executor_vectorised",
    tier=("smoke", "full"),
    tags=("hotpath", "executor"),
    # before/after ratio on the same machine: stable in magnitude, not
    # in digits — the band still catches the vectorisation regressing
    tolerances={"speedup": 0.6, "speedup_min": 0.6},
)
def _executor_vectorised(ctx):
    """Whole-layer SoA task execution vs per-task loop, bit-exact."""
    rows = []
    speedups = []
    for ds, model in TIER_CELLS[ctx.tier]:
        ref_s, vec_s = _time_cell(ds, model)
        speedup = ref_s / vec_s
        speedups.append(speedup)
        rows.append([
            f"{model}/{ds}",
            f"{ref_s * 1e3:.1f}",
            f"{vec_s * 1e3:.1f}",
            f"{speedup:.2f}x",
        ])
    emit("executor_vectorised", format_table(
        ["cell", "per-task loop (ms)", "vectorised (ms)", "speedup"],
        rows,
        title=(
            f"Task-loop execution, best of {REPEATS} "
            f"(tier {ctx.tier}; bit-exact asserted per cell)"
        ),
    ))
    worst = min(speedups)
    best = max(speedups)
    # floors, not targets: the task-bound cell must stay clearly vectorised
    # (>4x; measured ~8x) and no cell may regress to parity (>2x even for
    # the BLAS-bound ones, which measure 2.3-3.6x with CI noise)
    assert best > 4.0, f"best cell only {best:.2f}x faster"
    assert worst > 2.0, f"vectorised loop only {worst:.2f}x faster"
    return {
        "speedup": Metric("speedup", best, "x", "higher"),
        "speedup_min": Metric("speedup_min", worst, "x", "higher"),
    }

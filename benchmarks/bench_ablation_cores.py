"""A2 — ablation: scaling with the number of Computation Cores.

The U250 design fits 7 CCs (Fig. 9).  This bench sweeps 1..8 cores and
checks that kernel makespans scale with core count until load balance or
memory bandwidth saturates — the reason the eta constraint exists.
"""

from _common import Metric, emit, engine_for, format_table, get_dataset, register_bench
from repro import u250_default


def sweep():
    data = get_dataset("PU")
    out = []
    for cores in (1, 2, 4, 7, 8):
        cfg = u250_default().replace(num_cores=cores)
        engine = engine_for(cfg)
        res = engine.infer(engine.compile("GCN", data, seed=7))
        out.append((cores, res.latency_ms, res.load_balance()))
    return out


def _table(rows):
    base = rows[0][1]
    return format_table(
        ["cores", "latency (ms)", "speedup vs 1 core", "load balance"],
        [[c, f"{lat:.4f}", f"{base / lat:.2f}x", f"{lb:.3f}"]
         for c, lat, lb in rows],
        title="A2: Computation Core scaling (GCN on PubMed)",
    )


@register_bench("ablation_cores", tier="full", tags=("ablation",))
def _spec(ctx):
    """A2: core-count scaling (modelled cycles, deterministic)."""
    rows = sweep()
    emit("ablation_cores", _table(rows))
    lat = {c: ms for c, ms, _ in rows}
    return {
        # unit "model-ms": derived from simulated cycles, deterministic
        # (not wall clock), so it gets the tight default tolerance
        "latency_7c_ms": Metric("latency_7c_ms", lat[7], "model-ms"),
        "scaling_7c": Metric("scaling_7c", lat[1] / lat[7], "x", "higher"),
    }


def test_ablation_cores(benchmark):
    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    emit("ablation_cores", _table(rows))
    lat = {c: ms for c, ms, _ in rows}
    assert lat[7] < lat[1], "7 cores must beat 1 core"
    assert lat[4] <= lat[1], "4 cores must not lose to 1 core"
    # scaling is sub-linear (memory bandwidth is shared)
    assert lat[1] / lat[7] <= 7.0

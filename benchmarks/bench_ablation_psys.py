"""A5 — ablation: ALU-array dimension psys.

psys moves three things at once: mode throughputs (p^2 / p^2/2 / p), the
SpDMM-vs-SPMM crossover (alpha_max = 2/psys), and FPGA resources
(Fig. 9).  The paper picks psys = 16 — the largest value for which seven
CCs fit the U250.  This bench sweeps psys and reports latency, primitive
mix and resource feasibility.
"""

from _common import Metric, emit, engine_for, format_table, get_dataset, register_bench
from repro import estimate_resources, u250_default
from repro.hw.report import Primitive


def sweep():
    data = get_dataset("CI")
    rows = []
    for psys in (8, 16, 32):
        cfg = u250_default().replace(psys=psys)
        engine = engine_for(cfg)
        handle = engine.compile("GCN", data, seed=7)
        res = engine.infer(handle)
        prims = res.primitive_totals
        fits = estimate_resources(cfg).fits
        rows.append(
            (psys, res.latency_ms, prims.get(Primitive.SPDMM, 0),
             prims.get(Primitive.SPMM, 0), 2.0 / psys, fits)
        )
    return rows


def _table(rows):
    return format_table(
        ["psys", "latency (ms)", "SpDMM pairs", "SPMM pairs",
         "SPMM threshold", "7 CCs fit U250"],
        [[p, f"{lat:.4f}", sd, sm, f"{thr:.4f}", fits]
         for p, lat, sd, sm, thr, fits in rows],
        title="A5: psys sweep (GCN on CiteSeer)",
    )


@register_bench("ablation_psys", tier="full", tags=("ablation",))
def _spec(ctx):
    """A5: psys ALU-array dimension sweep (modelled cycles, deterministic)."""
    rows = sweep()
    emit("ablation_psys", _table(rows))
    by_p = {r[0]: r for r in rows}
    return {
        "latency_p16_ms": Metric("latency_p16_ms", by_p[16][1], "model-ms"),
        "speedup_p16_vs_p8": Metric(
            "speedup_p16_vs_p8", by_p[8][1] / by_p[16][1], "x", "higher"
        ),
    }


def test_ablation_psys(benchmark):
    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    emit("ablation_psys", _table(rows))
    by_p = {r[0]: r for r in rows}
    # bigger arrays are faster (more MACs/cycle)
    assert by_p[16][1] <= by_p[8][1]
    # but psys = 32 does not fit the U250 with 7 CCs (paper's design point)
    assert by_p[16][5] and not by_p[32][5]

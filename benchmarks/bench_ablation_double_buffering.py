"""A3 — ablation: double buffering (§V-B3).

With double buffering, loads/format-transforms/profiling overlap compute:
task latency = max(compute, memory + transform).  Without it everything
serialises.  The paper claims the technique "not only overlaps the
computation and data communication, but also hides the overhead of
sparsity profiling and data layout/format transformation" — quantified
here.
"""

import dataclasses

from _common import Metric, emit, engine_for, format_table, get_dataset, register_bench
from repro import u250_default


def run_with(double_buffering: bool):
    data = get_dataset("PU")
    cfg = u250_default()
    cfg = cfg.replace(
        buffers=dataclasses.replace(cfg.buffers, double_buffering=double_buffering)
    )
    engine = engine_for(cfg)
    return engine.infer(engine.compile("GCN", data, seed=7))


def _table(on, off):
    return format_table(
        ["double buffering", "latency (ms)", "slowdown"],
        [
            ["on (paper)", f"{on.latency_ms:.4f}", "1.00x"],
            ["off", f"{off.latency_ms:.4f}",
             f"{off.latency_ms / on.latency_ms:.2f}x"],
        ],
        title="A3: double buffering on/off (GCN on PubMed)",
    )


@register_bench("ablation_double_buffering", tier="full", tags=("ablation",))
def _spec(ctx):
    """A3: double buffering on/off (modelled cycles, deterministic)."""
    on, off = run_with(True), run_with(False)
    emit("ablation_double_buffering", _table(on, off))
    return {
        "latency_on_ms": Metric("latency_on_ms", on.latency_ms, "model-ms"),
        "slowdown_off": Metric(
            "slowdown_off", off.total_cycles / on.total_cycles, "x", "higher"
        ),
    }


def test_ablation_double_buffering(benchmark):
    def sweep():
        return run_with(True), run_with(False)

    on, off = benchmark.pedantic(sweep, rounds=1, iterations=1)
    emit("ablation_double_buffering", _table(on, off))
    assert off.total_cycles > on.total_cycles
    # overlap should buy a tangible fraction, not epsilon
    assert off.total_cycles / on.total_cycles > 1.05

"""O2 — trace analytics: attribution must reconcile, what-ifs must match.

``repro.obs.analyze`` turns recorded spans into steering numbers — what
share of a sharded run's critical path is halo exchange, and what
overlapping or eliminating it would buy.  Those numbers are only useful
if they are *honest*, so this bench runs a traced sharded inference and
gates three invariants on every CI run:

- the critical-path category sums reconcile with
  ``ShardedResult.latency_s`` within 1%;
- the zero-halo what-if projection equals the result's own halo-seconds
  accounting (``ShardedResult.zero_halo_latency_s``) bit-for-bit;
- diffing the trace against itself reports zero deltas.

The emitted metrics track the ROADMAP's halo-overlap headroom (the
halo share of the critical path and the projected overlap/zero-halo
speedups) plus the analyzer's own wall-clock cost, so a perf regression
in either the modelled numbers or the analysis itself is caught by the
baseline gate.

Runs two ways:

- ``pytest benchmarks/bench_trace_analyze.py`` — pytest harness;
- ``python benchmarks/bench_trace_analyze.py [--smoke]`` — standalone,
  used by CI's benchmark smoke job.
"""

import argparse
import sys
import time

import numpy as np
from _common import Metric, emit, format_table, register_bench
from repro.config import small_test_config, u250_default
from repro.engine import Engine
from repro.obs import TraceModel, Tracer, attribute, diff_traces, project

FULL = dict(model="GCN", dataset="PU", scale=1.0, shards=4)
SMOKE = dict(model="GCN", dataset="CO", scale=1.0, shards=2)

#: attribution must reconcile with the reported latency within 1%
RECONCILE_RTOL = 0.01


def measure(*, model, dataset, scale, shards, config):
    """Traced sharded run + full analysis; returns the steering numbers."""
    tracer = Tracer(task_spans=False)
    engine = Engine(config, pool_size=shards, tracer=tracer)
    handle = engine.compile(model, dataset, scale=scale, shards=shards)
    result = engine.infer(handle, backend="sharded")
    trace_model = TraceModel.from_tracer(tracer, meta={
        "expected_total_s": result.latency_s,
        "num_cores": config.num_cores,
    })

    t0 = time.perf_counter()
    att = attribute(trace_model)
    zero = project(trace_model, zero_halo=True)
    overlap = project(trace_model, overlap_halo=True)
    diff = diff_traces(trace_model, trace_model)
    analyze_s = time.perf_counter() - t0

    assert att.reconciles(RECONCILE_RTOL), (
        f"attribution does not reconcile: critical path {att.total_s:.9f} s "
        f"vs reported {result.latency_s:.9f} s "
        f"(residual {att.residual_frac():.2%})"
    )
    assert np.isclose(
        zero.projected_s, result.zero_halo_latency_s(), rtol=1e-9
    ), (
        f"zero-halo projection {zero.projected_s:.9f} s does not match "
        f"ShardedResult accounting {result.zero_halo_latency_s():.9f} s"
    )
    assert np.isclose(
        overlap.projected_s, result.overlap_halo_latency_s(), rtol=1e-9
    ), "overlap-halo projection diverges from ShardedResult accounting"
    assert diff.is_zero(), "self-diff must report zero deltas"

    return {
        "latency_s": result.latency_s,
        "halo_frac": att.fraction("halo"),
        "kernel_frac": att.fraction("kernel"),
        "zero_halo_speedup": zero.speedup,
        "overlap_halo_speedup": overlap.speedup,
        "analyze_s": analyze_s,
        "num_segments": att.num_segments,
    }


def _table(params, stats) -> str:
    return format_table(
        ["model", "dataset", "shards", "latency (ms)", "halo share",
         "zero-halo", "overlap-halo", "analyze (ms)"],
        [[params["model"], params["dataset"], params["shards"],
          f"{stats['latency_s'] * 1e3:.4f}",
          f"{stats['halo_frac'] * 100:.2f}%",
          f"{stats['zero_halo_speedup']:.3f}x",
          f"{stats['overlap_halo_speedup']:.3f}x",
          f"{stats['analyze_s'] * 1e3:.3f}"]],
        title="O2: critical-path attribution + what-if projections",
    )


@register_bench(
    "trace_analyze",
    tier=("smoke", "full"),
    tags=("obs", "shard"),
    # the fractions/speedups are modelled (machine-independent) but the
    # shard plan shifts with the scaled dataset, so keep the default
    # band; analyze_ms is wall-clock and gets the cross-machine band
    tolerances={},
)
def _spec(ctx):
    """Attribution reconciliation + what-if oracles on a sharded trace."""
    params = SMOKE if ctx.smoke else FULL
    config = small_test_config() if ctx.smoke else u250_default()
    stats = measure(**params, config=config)
    emit("bench_trace_analyze", _table(params, stats))
    return {
        "halo_frac": Metric("halo_frac", stats["halo_frac"], "frac"),
        "zero_halo_speedup": Metric(
            "zero_halo_speedup", stats["zero_halo_speedup"], "x", "higher"
        ),
        "overlap_halo_speedup": Metric(
            "overlap_halo_speedup", stats["overlap_halo_speedup"], "x",
            "higher",
        ),
        "analyze_ms": Metric("analyze_ms", stats["analyze_s"] * 1e3, "ms"),
    }


def test_trace_analyze():
    """The three analyzer invariants hold on a sharded smoke run."""
    stats = measure(**SMOKE, config=small_test_config())
    emit("bench_trace_analyze", _table(SMOKE, stats))
    assert stats["zero_halo_speedup"] >= 1.0
    assert stats["overlap_halo_speedup"] >= 1.0
    # overlap can never beat free halos
    assert stats["overlap_halo_speedup"] <= stats["zero_halo_speedup"] + 1e-12
    assert 0.0 <= stats["halo_frac"] < 1.0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke", action="store_true",
        help="small config + 2 shards (CI smoke job)",
    )
    args = parser.parse_args(argv)
    params = SMOKE if args.smoke else FULL
    config = small_test_config() if args.smoke else u250_default()
    stats = measure(**params, config=config)
    print(_table(params, stats))
    print(f"\nOK: attribution reconciles over {stats['num_segments']} "
          f"critical-path segments; halo share "
          f"{stats['halo_frac'] * 100:.2f}%, overlap-halo would buy "
          f"{stats['overlap_halo_speedup']:.3f}x")
    return 0


if __name__ == "__main__":
    sys.exit(main())

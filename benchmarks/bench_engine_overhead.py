"""E1 — engine: the facade must be a zero-cost abstraction.

``Engine.infer`` adds a registry lookup, a strategy construction and a
dataclass hop on top of ``run_strategy``; against a simulation that takes
milliseconds, that must be noise.  This bench times both paths on the
same compiled program and the same simulated device (best-of-N, so
scheduler jitter doesn't pollute the comparison) and asserts the facade
costs <= 5% — the acceptance gate for routing every consumer (CLI,
serving, benchmarks) through the engine.

Runs two ways:

- ``pytest benchmarks/bench_engine_overhead.py`` — the pytest-benchmark
  harness, rendering a table under results/;
- ``python benchmarks/bench_engine_overhead.py [--smoke]`` — standalone,
  used by CI's benchmark smoke job (``--smoke`` uses the small config and
  fewer repeats).
"""

import argparse
import sys

from _common import Metric, emit, format_table, register_bench
from repro.config import small_test_config, u250_default
from repro.engine import measure_facade_overhead

#: acceptance ceiling: the facade may cost at most 5% over run_strategy
MAX_OVERHEAD = 0.05

FULL = dict(model="GCN", dataset="PU", scale=1.0, repeats=9)
#: runs are only a few ms on the small config, so take many repeats —
#: best-of-N needs a quiet sample on both sides to measure ~us of facade
SMOKE = dict(model="GCN", dataset="CO", scale=0.25, repeats=25)


def _table(results) -> str:
    return format_table(
        ["model", "dataset", "strategy", "direct (ms)", "engine (ms)",
         "overhead"],
        [[r.model, r.dataset, r.strategy, f"{r.direct_s * 1e3:.3f}",
          f"{r.engine_s * 1e3:.3f}", f"{r.overhead_fraction * 100:+.2f}%"]
         for r in results],
        title="E1: Engine facade overhead vs direct run_strategy",
    )


@register_bench(
    "engine_overhead",
    tier=("smoke", "full"),
    tags=("engine", "micro"),
    # the overhead fraction hovers around zero (it is facade cost in the
    # noise floor of a best-of-N host measurement); relative comparison
    # against a near-zero baseline is meaningless, so the band is wide —
    # the payload's own <= 5% assertion is the real gate
    tolerances={"overhead_frac": 25.0},
)
def _spec(ctx):
    """Engine facade overhead vs direct run_strategy (<= 5% gate)."""

    def once():
        if ctx.smoke:
            return measure_facade_overhead(**SMOKE, config=small_test_config())
        return measure_facade_overhead(**FULL, config=u250_default())

    # the measurement resolves ~us of facade cost against ms of noise:
    # keep the best of three attempts so scheduler spikes don't fail the
    # gate (the real overhead is the attempts' floor, not their max)
    result = once()
    for _ in range(2):
        if result.overhead_fraction <= MAX_OVERHEAD:
            break
        result = min(result, once(), key=lambda r: r.overhead_fraction)
    emit("bench_engine_overhead", _table([result]))
    assert result.overhead_fraction <= MAX_OVERHEAD, (
        f"Engine.infer costs {result.overhead_fraction:.1%} over "
        f"run_strategy (ceiling {MAX_OVERHEAD:.0%}, best of 3)"
    )
    return {
        "overhead_frac": Metric("overhead_frac", result.overhead_fraction, "frac"),
        "direct_ms": Metric("direct_ms", result.direct_s * 1e3, "ms"),
    }


def test_engine_overhead(benchmark):
    """Facade overhead <= 5% on the small config (best-of-N timing)."""
    result = benchmark.pedantic(
        lambda: measure_facade_overhead(**SMOKE, config=small_test_config()),
        rounds=1, iterations=1,
    )
    emit("bench_engine_overhead", _table([result]))
    assert result.overhead_fraction <= MAX_OVERHEAD, (
        f"Engine.infer costs {result.overhead_fraction:.1%} over "
        f"run_strategy (ceiling {MAX_OVERHEAD:.0%})"
    )


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke", action="store_true",
        help="small config + fewer repeats (CI smoke job)",
    )
    args = parser.parse_args(argv)

    if args.smoke:
        result = measure_facade_overhead(**SMOKE, config=small_test_config())
    else:
        result = measure_facade_overhead(**FULL, config=u250_default())
    print(_table([result]))

    if result.overhead_fraction > MAX_OVERHEAD:
        print(f"\nFAIL: facade overhead {result.overhead_fraction:.1%} "
              f"exceeds the {MAX_OVERHEAD:.0%} ceiling")
        return 1
    print(f"\nOK: facade overhead {result.overhead_fraction:+.2%} "
          f"(ceiling {MAX_OVERHEAD:.0%})")
    return 0


if __name__ == "__main__":
    sys.exit(main())

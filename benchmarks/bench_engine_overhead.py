"""E1 — engine: the facade must be a zero-cost abstraction.

``Engine.infer`` adds a registry lookup, a strategy construction and a
dataclass hop on top of ``run_strategy``; against a simulation that takes
milliseconds, that must be noise.  This bench times both paths on the
same compiled program and the same simulated device (best-of-N, so
scheduler jitter doesn't pollute the comparison) and asserts the facade
costs <= 5% — the acceptance gate for routing every consumer (CLI,
serving, benchmarks) through the engine.

Runs two ways:

- ``pytest benchmarks/bench_engine_overhead.py`` — the pytest-benchmark
  harness, rendering a table under results/;
- ``python benchmarks/bench_engine_overhead.py [--smoke]`` — standalone,
  used by CI's benchmark smoke job (``--smoke`` uses the small config and
  fewer repeats).
"""

import argparse
import sys

from _common import emit, format_table
from repro.config import small_test_config, u250_default
from repro.engine import measure_facade_overhead

#: acceptance ceiling: the facade may cost at most 5% over run_strategy
MAX_OVERHEAD = 0.05

FULL = dict(model="GCN", dataset="PU", scale=1.0, repeats=9)
#: runs are only a few ms on the small config, so take many repeats —
#: best-of-N needs a quiet sample on both sides to measure ~us of facade
SMOKE = dict(model="GCN", dataset="CO", scale=0.25, repeats=25)


def _table(results) -> str:
    return format_table(
        ["model", "dataset", "strategy", "direct (ms)", "engine (ms)",
         "overhead"],
        [[r.model, r.dataset, r.strategy, f"{r.direct_s * 1e3:.3f}",
          f"{r.engine_s * 1e3:.3f}", f"{r.overhead_fraction * 100:+.2f}%"]
         for r in results],
        title="E1: Engine facade overhead vs direct run_strategy",
    )


def test_engine_overhead(benchmark):
    """Facade overhead <= 5% on the small config (best-of-N timing)."""
    result = benchmark.pedantic(
        lambda: measure_facade_overhead(**SMOKE, config=small_test_config()),
        rounds=1, iterations=1,
    )
    emit("bench_engine_overhead", _table([result]))
    assert result.overhead_fraction <= MAX_OVERHEAD, (
        f"Engine.infer costs {result.overhead_fraction:.1%} over "
        f"run_strategy (ceiling {MAX_OVERHEAD:.0%})"
    )


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke", action="store_true",
        help="small config + fewer repeats (CI smoke job)",
    )
    args = parser.parse_args(argv)

    if args.smoke:
        result = measure_facade_overhead(**SMOKE, config=small_test_config())
    else:
        result = measure_facade_overhead(**FULL, config=u250_default())
    print(_table([result]))

    if result.overhead_fraction > MAX_OVERHEAD:
        print(f"\nFAIL: facade overhead {result.overhead_fraction:.1%} "
              f"exceeds the {MAX_OVERHEAD:.0%} ceiling")
        return 1
    print(f"\nOK: facade overhead {result.overhead_fraction:+.2%} "
          f"(ceiling {MAX_OVERHEAD:.0%})")
    return 0


if __name__ == "__main__":
    sys.exit(main())

"""E6 — Fig. 12: speedup of Dynamic over S2 vs. weight sparsity.

S2 (the AWB-GCN mapping) runs everything as SpDMM with the left operand
sparse; it exploits feature sparsity but not weight sparsity, and it
wastes 2x on dense Updates.  Expected shape: speedups above 1 that grow
with weight sparsity (paper Table VIII: 1.38x -> 5.03x across bands).
"""

from _common import DATASETS, MODELS, Metric, emit, register_bench, run
from bench_fig11_speedup_s1 import _band_geomeans, build_table, series


@register_bench("fig12_speedup_s2", tier="full", tags=("paper", "figure"))
def _spec(ctx):
    """Fig. 12: speedup of Dynamic over S2 vs weight sparsity."""
    emit("fig12_speedup_s2", build_table(baseline="S2"))
    lo, hi = _band_geomeans("S2")
    return {
        "geomean_unpruned": Metric("geomean_unpruned", lo, "x", "higher"),
        "geomean_95pct": Metric("geomean_95pct", hi, "x", "higher"),
    }


def test_fig12(benchmark):
    table = benchmark.pedantic(
        lambda: build_table(baseline="S2"), rounds=1, iterations=1
    )
    emit("fig12_speedup_s2", table)
    grow = 0
    total = 0
    for model_name in MODELS:
        data = series(model_name, baseline="S2")
        for ds in DATASETS:
            total += 1
            if data[ds][-1] >= data[ds][0] * 0.99:
                grow += 1
            # Dynamic never meaningfully loses to S2
            assert min(data[ds]) > 0.9, (model_name, ds, data[ds])
    assert grow >= 0.7 * total


def test_fig12_dense_update_penalty(benchmark):
    """On Reddit (100%-dense H0) S2's Update-as-SpDMM pays the 2x MAC
    throughput penalty, so Dynamic wins even with no pruning."""

    def check():
        return run("GCN", "RE", "S2", 0, sweep=True).total_cycles / run(
            "GCN", "RE", "Dynamic", 0, sweep=True
        ).total_cycles

    v = benchmark.pedantic(check, rounds=1, iterations=1)
    assert v > 1.05

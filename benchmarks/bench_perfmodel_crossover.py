"""E13 — Table IV / §VI-A: performance-model crossovers, model vs simulator.

Sweeps operand densities over a grid, executes each point with all three
modes on a simulated core, and verifies the §VI-A regions: the mode the
closed-form rule selects is (near-)optimal in *simulated* cycles too, and
the crossovers sit where the analysis puts them (alpha_min = 1/2 for
GEMM/SpDMM, alpha_max = 2/psys for SpDMM/SPMM).
"""

import numpy as np
import scipy.sparse as sp

from _common import Metric, emit, format_table, register_bench
from repro import u250_default
from repro.hw.gemm_unit import gemm_compute_cycles
from repro.hw.report import Primitive
from repro.hw.spdmm_unit import spdmm_compute_cycles
from repro.hw.spmm_unit import spmm_compute_cycles
from repro.runtime.perf_model import model_cycles, region_primitive

CFG = u250_default()
N = 256  # partition side for the sweep


def rand_density(n, dens, seed):
    rng = np.random.default_rng(seed)
    mat = sp.random(n, n, density=dens, format="csr", dtype=np.float32, rng=rng)
    mat.data[:] = 1.0
    return mat


def simulated_cycles(x, y):
    """Exact simulator cycles of each mode for one operand pair."""
    ax = x.nnz / (N * N)
    ay = y.nnz / (N * N)
    gemm = gemm_compute_cycles(N, N, N, CFG)
    nnz_min = min(x.nnz, y.nnz)
    spdmm = spdmm_compute_cycles(nnz_min, N, CFG)
    spmm, _ = spmm_compute_cycles(x, y, CFG)
    return {"GEMM": gemm, "SpDMM": spdmm, "SPMM": spmm}, ax, ay


def build_table():
    densities = [0.002, 0.01, 0.05, 0.125, 0.3, 0.6, 1.0]
    rows = []
    agreements = 0
    total = 0
    for i, dx in enumerate(densities):
        for dy in densities[i:]:
            x = rand_density(N, dx, seed=int(dx * 1e4))
            y = rand_density(N, dy, seed=int(dy * 1e4) + 1)
            cyc, ax, ay = simulated_cycles(x, y)
            best_sim = min(cyc, key=cyc.get)
            rule = region_primitive(ax, ay, CFG).value
            total += 1
            # "agreement" = the rule's mode is within 25% of the simulated
            # optimum (ties and ceil effects blur exact argmin)
            ok = cyc[rule] <= 1.25 * cyc[best_sim]
            agreements += ok
            rows.append(
                [f"{ax:.3f}", f"{ay:.3f}", rule, best_sim,
                 f"{cyc['GEMM']}", f"{cyc['SpDMM']}", f"{cyc['SPMM']}",
                 "ok" if ok else "MISS"]
            )
    table = format_table(
        ["alpha_x", "alpha_y", "rule", "sim best", "GEMM cyc", "SpDMM cyc",
         "SPMM cyc", "agree"],
        rows,
        title=(
            "Table IV / SVI-A: region rule vs simulated cycles "
            f"(psys={CFG.psys}, N={N}; crossovers at 0.5 and {2 / CFG.psys})"
        ),
    )
    return table, agreements, total


@register_bench("perfmodel_crossover", tier="full", tags=("model",))
def _spec(ctx):
    """Table IV / §VI-A: region rule vs simulated cycles."""
    table, agreements, total = build_table()
    emit("perfmodel_crossover", table)
    return {
        "agreement_rate": Metric(
            "agreement_rate", agreements / total, "frac", "higher"
        ),
    }


def test_crossover(benchmark):
    table, agreements, total = benchmark.pedantic(build_table, rounds=1, iterations=1)
    emit("perfmodel_crossover", table)
    assert agreements / total >= 0.85, f"rule optimal in only {agreements}/{total}"


def test_model_tracks_simulator(benchmark):
    """Table IV predictions correlate with simulated cycles across modes."""

    def check():
        pred, sim = [], []
        for dens in (0.01, 0.05, 0.2, 0.7):
            x = rand_density(N, dens, seed=int(dens * 1e5))
            y = rand_density(N, dens, seed=int(dens * 1e5) + 9)
            cyc, ax, ay = simulated_cycles(x, y)
            for prim, key in [
                (Primitive.GEMM, "GEMM"),
                (Primitive.SPDMM, "SpDMM"),
                (Primitive.SPMM, "SPMM"),
            ]:
                pred.append(model_cycles(prim, N, N, N, ax, ay, CFG))
                sim.append(cyc[key])
        return np.corrcoef(np.log1p(pred), np.log1p(sim))[0, 1]

    corr = benchmark.pedantic(check, rounds=1, iterations=1)
    assert corr > 0.95, f"model/simulator correlation too low: {corr:.3f}"

"""E1 — Fig. 1: density of the graph adjacency matrix A.

The paper's Fig. 1 plots the (very low) densities of the six adjacency
matrices and visualises their block structure.  We reproduce the density
series and the block-density spread (min / median / max over N1 x N1
partitions) that motivates fine-grained mapping.
"""

import numpy as np

from _common import DATASETS, Metric, emit, format_table, get_dataset, register_bench
from repro.formats.density import density
from repro.formats.partition import PartitionedMatrix


@register_bench("fig1_adjacency_density", tier="full", tags=("paper", "figure"))
def _spec(ctx):
    """Fig. 1: adjacency density and per-block spread."""
    emit("fig1_adjacency_density", build_table())
    return {
        "density_A_CO": Metric(
            "density_A_CO", density(get_dataset("CO").a), "frac"
        ),
    }


def build_table():
    rows = []
    for name in DATASETS:
        data = get_dataset(name)
        d = density(data.a)
        n1 = max(data.num_vertices // 16, 1)
        pm = PartitionedMatrix(data.a, n1, n1, name="A")
        grid = pm.density_grid
        rows.append(
            [
                name,
                f"{d * 100:.4f}%",
                f"{grid.min() * 100:.4f}%",
                f"{np.median(grid) * 100:.4f}%",
                f"{grid.max() * 100:.4f}%",
                int((grid == 0).sum()),
            ]
        )
    return format_table(
        ["Dataset", "density(A)", "min block", "median block", "max block",
         "empty blocks"],
        rows,
        title="Fig. 1: adjacency density and per-block spread (16x16 grid)",
    )


def test_fig1(benchmark):
    table = benchmark.pedantic(build_table, rounds=1, iterations=1)
    emit("fig1_adjacency_density", table)
    # every adjacency is extremely sparse (paper: densities < 0.25%)...
    for name in DATASETS:
        data = get_dataset(name)
        assert density(data.a) < 0.05

"""A4 — ablation: partition-size trade-off (Algorithm 9's objectives).

Sweeps the minimum partition dimension and compares against the
heuristic's choice.  Small partitions maximise task parallelism and
fine-grained sparsity exploitation but multiply K2P decisions and operand
reloads; large partitions maximise locality but starve the cores.  The
heuristic should land within a modest factor of the sweep's best point.
"""

from _common import Metric, emit, engine_for, format_table, get_dataset, register_bench
from repro import u250_default


def sweep():
    data = get_dataset("PU")
    rows = []
    for floor in (64, 128, 256, 512, 1024, 2048):
        cfg = u250_default().replace(min_partition_dim=floor)
        engine = engine_for(cfg)
        handle = engine.compile("GCN", data, seed=7)
        res = engine.infer(handle)
        rows.append(
            (floor, handle.program.n1, handle.program.n2, res.latency_ms,
             res.overhead_fraction, res.num_pairs, res.load_balance())
        )
    return rows


def _table(rows):
    return format_table(
        ["min dim", "N1", "N2", "latency (ms)", "K2P ovh", "pairs", "balance"],
        [[f, n1, n2, f"{lat:.4f}", f"{o:.3f}", p, f"{lb:.3f}"]
         for f, n1, n2, lat, o, p, lb in rows],
        title="A4: partition-size sweep (GCN on PubMed)",
    )


@register_bench("ablation_partition", tier="full", tags=("ablation",))
def _spec(ctx):
    """A4: partition-size sweep (modelled cycles, deterministic)."""
    rows = sweep()
    emit("ablation_partition", _table(rows))
    by_floor = {r[0]: r for r in rows}
    best = min(r[3] for r in rows)
    return {
        "latency_1024_ms": Metric("latency_1024_ms", by_floor[1024][3], "model-ms"),
        "heuristic_vs_best": Metric(
            "heuristic_vs_best", by_floor[1024][3] / best, "x"
        ),
        "pairs_64": Metric("pairs_64", by_floor[64][5], "count"),
    }


def test_ablation_partition(benchmark):
    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    emit("ablation_partition", _table(rows))
    by_floor = {r[0]: r for r in rows}
    # smaller partitions -> more pairs -> more runtime-system work
    assert by_floor[64][5] > by_floor[1024][5]
    assert by_floor[64][4] >= by_floor[1024][4]
    # the default (1024) is within 2x of the best point in the sweep
    best = min(r[3] for r in rows)
    assert by_floor[1024][3] <= 2.0 * best

"""O1 — observability: a disabled tracer must be free.

``repro.obs`` threads a ``tracer=`` parameter through the whole runtime,
defaulting to the shared ``NULL_TRACER`` whose ``enabled`` flag gates all
span construction.  The design promise is that the disabled path costs
one attribute check per *kernel* (the task inner loop is untouched), so
a run with tracing off must be indistinguishable from the pre-obs
runtime.  This bench times three variants of the same run on the same
compiled program and simulated device:

- ``off``  — the default path (implicit ``NULL_TRACER``);
- ``noop`` — a fresh ``NullTracer`` instance threaded explicitly (same
  disabled machinery, defeats any identity-based shortcut);
- ``traced`` — a real ``Tracer`` with task spans on (informational: the
  cost you opt into when you ask for a timeline).

The gate: ``noop`` may cost at most 2% over ``off`` (best-of-N on both
sides).  ``traced`` has no ceiling — it is reported so regressions in
the enabled path stay visible in BENCH_obs_overhead.json.

Runs two ways:

- ``pytest benchmarks/bench_obs_overhead.py`` — pytest harness;
- ``python benchmarks/bench_obs_overhead.py [--smoke]`` — standalone,
  used by CI's benchmark smoke job.
"""

import argparse
import sys
import time

from _common import Metric, emit, format_table, register_bench
from repro.config import small_test_config, u250_default
from repro.engine import Engine
from repro.obs import NullTracer, Tracer
from repro.runtime.executor import run_strategy

#: acceptance ceiling: a disabled tracer may cost at most 2%
MAX_DISABLED_OVERHEAD = 0.02

#: same instances as bench_engine_overhead, so the two gates see the
#: same noise floor
FULL = dict(model="GCN", dataset="PU", scale=1.0, repeats=9)
SMOKE = dict(model="GCN", dataset="CO", scale=0.25, repeats=25)


def measure(*, model, dataset, scale, repeats, config):
    """Best-of-``repeats`` seconds for off / noop / traced runs."""
    engine = Engine(config)
    handle = engine.compile(model, dataset, scale=scale)
    device = engine.device(0)
    noop = NullTracer()

    def run(tracer=None):
        if tracer is None:
            return run_strategy(handle.program, "Dynamic", accelerator=device)
        return run_strategy(
            handle.program, "Dynamic", accelerator=device, tracer=tracer
        )

    # warm each path once, then interleave so drift hits all three
    run()
    run(noop)
    off_s = noop_s = traced_s = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        run()
        off_s = min(off_s, time.perf_counter() - t0)
        t0 = time.perf_counter()
        run(noop)
        noop_s = min(noop_s, time.perf_counter() - t0)
        tracer = Tracer()
        t0 = time.perf_counter()
        run(tracer)
        traced_s = min(traced_s, time.perf_counter() - t0)
    return off_s, noop_s, traced_s


def _table(model, dataset, off_s, noop_s, traced_s) -> str:
    return format_table(
        ["model", "dataset", "off (ms)", "noop tracer (ms)", "overhead",
         "traced (ms)"],
        [[model, dataset, f"{off_s * 1e3:.3f}", f"{noop_s * 1e3:.3f}",
          f"{(noop_s / off_s - 1.0) * 100:+.2f}%", f"{traced_s * 1e3:.3f}"]],
        title="O1: tracer overhead (disabled path must be free)",
    )


@register_bench(
    "obs_overhead",
    tier=("smoke", "full"),
    tags=("obs", "micro"),
    # like engine_overhead: the gated quantity hovers around zero, so a
    # relative band is meaningless — the payload's own assertion gates
    tolerances={"disabled_frac": 25.0, "traced_frac": 5.0},
)
def _spec(ctx):
    """Disabled-tracer overhead vs the bare runtime (<= 2% gate)."""
    params = SMOKE if ctx.smoke else FULL
    config = small_test_config() if ctx.smoke else u250_default()

    # best of three attempts: the disabled paths differ by an attribute
    # check, so a scheduler spike on either side dwarfs the real signal
    best = None
    for _ in range(3):
        off_s, noop_s, traced_s = measure(**params, config=config)
        frac = noop_s / off_s - 1.0
        if best is None or frac < best[0]:
            best = (frac, off_s, noop_s, traced_s)
        if best[0] <= MAX_DISABLED_OVERHEAD:
            break
    frac, off_s, noop_s, traced_s = best
    emit("bench_obs_overhead",
         _table(params["model"], params["dataset"], off_s, noop_s, traced_s))
    assert frac <= MAX_DISABLED_OVERHEAD, (
        f"disabled tracer costs {frac:.1%} over the bare runtime "
        f"(ceiling {MAX_DISABLED_OVERHEAD:.0%}, best of 3)"
    )
    return {
        "disabled_frac": Metric("disabled_frac", frac, "frac"),
        "traced_frac": Metric(
            "traced_frac", traced_s / off_s - 1.0, "frac"
        ),
        "off_ms": Metric("off_ms", off_s * 1e3, "ms"),
    }


def test_obs_overhead():
    """Disabled-tracer overhead <= 2% (best-of-N, best-of-3 attempts)."""
    best = float("inf")
    for _ in range(3):
        off_s, noop_s, traced_s = measure(**SMOKE, config=small_test_config())
        best = min(best, noop_s / off_s - 1.0)
        if best <= MAX_DISABLED_OVERHEAD:
            break
    emit("bench_obs_overhead", _table(SMOKE["model"], SMOKE["dataset"],
                                      off_s, noop_s, traced_s))
    assert best <= MAX_DISABLED_OVERHEAD, (
        f"disabled tracer costs {best:.1%} over the bare runtime "
        f"(ceiling {MAX_DISABLED_OVERHEAD:.0%})"
    )


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke", action="store_true",
        help="small config + fewer repeats (CI smoke job)",
    )
    args = parser.parse_args(argv)
    params = SMOKE if args.smoke else FULL
    config = small_test_config() if args.smoke else u250_default()

    best = None
    for _ in range(3):
        off_s, noop_s, traced_s = measure(**params, config=config)
        frac = noop_s / off_s - 1.0
        if best is None or frac < best[0]:
            best = (frac, off_s, noop_s, traced_s)
        if best[0] <= MAX_DISABLED_OVERHEAD:
            break
    frac, off_s, noop_s, traced_s = best
    print(_table(params["model"], params["dataset"], off_s, noop_s, traced_s))

    if frac > MAX_DISABLED_OVERHEAD:
        print(f"\nFAIL: disabled-tracer overhead {frac:.1%} exceeds the "
              f"{MAX_DISABLED_OVERHEAD:.0%} ceiling")
        return 1
    print(f"\nOK: disabled-tracer overhead {frac:+.2%} "
          f"(ceiling {MAX_DISABLED_OVERHEAD:.0%}); "
          f"enabled tracing costs {traced_s / off_s - 1.0:+.1%}")
    return 0


if __name__ == "__main__":
    sys.exit(main())

"""S1 — sharded scaling: modelled speedup and halo traffic vs devices.

Two claims, both on deterministic modelled numbers (no host wall-clock):

1. sharding one inference across 4 devices by nnz-balanced vertex
   ranges is >= 2x faster (modelled, per-layer barriers + PCIe halo
   exchange included) than the single-device run;
2. the sharded output is **bit-exact** against the single-device
   ``run_strategy`` result at every shard count.

Runs two ways:

- ``pytest benchmarks/bench_sharded_scaling.py`` — the pytest-benchmark
  harness, rendering tables under results/;
- ``python benchmarks/bench_sharded_scaling.py [--smoke]`` — standalone,
  used by CI's benchmark smoke job via the ``repro.perf`` registry.
"""

import argparse
import sys

import numpy as np

from _common import Metric, emit, format_table, get_program, register_bench
from repro.runtime.executor import run_strategy
from repro.shard import run_sharded

SHARD_COUNTS = (2, 4)
#: PubMed at full scale: big enough that 28 Aggregate block rows split
#: cleanly over 4 devices; FL (scale 0.25) for the full tier
SMOKE = dict(model_name="GCN", ds_name="PU")
FULL = dict(model_name="GCN", ds_name="FL")
MIN_SPEEDUP_4DEV = 2.0


def sweep(model_name: str, ds_name: str):
    """Single-device baseline + one sharded run per shard count."""
    program = get_program(model_name, ds_name)
    single = run_strategy(program, "Dynamic")
    runs = {}
    for n in SHARD_COUNTS:
        result = run_sharded(program, n)
        exact = bool(np.array_equal(
            result.output_dense(), single.output_dense()
        ))
        runs[n] = (result, exact)
    return single, runs


def _table(single, runs) -> str:
    rows = [["1", f"{single.latency_ms:.4f}", "1.00x", "0", "0.0%", "-",
             "yes"]]
    for n, (r, exact) in sorted(runs.items()):
        rows.append([
            str(r.num_shards), f"{r.latency_ms:.4f}",
            f"{r.speedup_vs(single):.2f}x", f"{r.halo_bytes:,}",
            f"{r.halo_fraction * 100:.1f}%", f"{r.load_balance():.3f}",
            "yes" if exact else "NO",
        ])
    return format_table(
        ["shards", "latency (ms)", "speedup", "halo bytes", "halo %",
         "balance", "bit-exact"],
        rows,
        title="S1: sharded scaling vs device count (modelled)",
    )


@register_bench(
    "sharded_scaling",
    tier=("smoke", "full"),
    tags=("shard", "scaling", "serve"),
    # modelled (cycle-accurate + PCIe model) numbers: deterministic on
    # one instance, but the smoke/full instances differ, so the bands
    # stay moderate
    tolerances={"speedup_2dev": 0.2, "speedup_4dev": 0.2,
                "halo_fraction_4dev": 0.5},
)
def _spec(ctx):
    """Sharded multi-device scaling: speedup and halo fraction."""
    cfg = SMOKE if ctx.smoke else FULL
    single, runs = sweep(**cfg)
    emit("bench_sharded_scaling", _table(single, runs))
    assert all(exact for _, exact in runs.values()), (
        "sharded output diverged from the single-device run"
    )
    r4 = runs[4][0]
    speedup4 = r4.speedup_vs(single)
    assert speedup4 >= MIN_SPEEDUP_4DEV, (
        f"4-device modelled speedup {speedup4:.2f}x below "
        f"{MIN_SPEEDUP_4DEV}x"
    )
    return {
        "speedup_2dev": Metric(
            "speedup_2dev", runs[2][0].speedup_vs(single), "x", "higher"
        ),
        "speedup_4dev": Metric("speedup_4dev", speedup4, "x", "higher"),
        "halo_fraction_4dev": Metric(
            "halo_fraction_4dev", r4.halo_fraction, "fraction", "lower"
        ),
        "single_latency_modelled_ms": Metric(
            "single_latency_modelled_ms", single.latency_ms, "ms", "lower"
        ),
    }


def test_sharded_bit_exact_and_scaling(benchmark):
    """>=2x modelled speedup at 4 devices, outputs bit-exact throughout."""
    single, runs = benchmark.pedantic(
        lambda: sweep(**SMOKE), rounds=1, iterations=1
    )
    emit("bench_sharded_scaling", _table(single, runs))
    assert all(exact for _, exact in runs.values())
    assert runs[4][0].speedup_vs(single) >= MIN_SPEEDUP_4DEV
    assert 0.0 < runs[4][0].halo_fraction < 1.0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke", action="store_true",
        help="smoke instance (PubMed; the full tier sweeps Flickr)",
    )
    args = parser.parse_args(argv)
    cfg = SMOKE if args.smoke else FULL
    single, runs = sweep(**cfg)
    print(_table(single, runs))

    failures = []
    if not all(exact for _, exact in runs.values()):
        failures.append("sharded output diverged from single-device run")
    speedup4 = runs[4][0].speedup_vs(single)
    if speedup4 < MIN_SPEEDUP_4DEV:
        failures.append(
            f"4-device speedup {speedup4:.2f}x below {MIN_SPEEDUP_4DEV}x"
        )
    if failures:
        print("\nFAIL: " + "; ".join(failures))
        return 1
    print(f"\nOK: bit-exact at {SHARD_COUNTS} shards; 4-device speedup "
          f"{speedup4:.2f}x, halo fraction "
          f"{runs[4][0].halo_fraction:.1%}")
    return 0


if __name__ == "__main__":
    sys.exit(main())

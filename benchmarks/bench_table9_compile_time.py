"""E8 — Table IX: compiler preprocessing time (measured wall clock).

The paper reports per-dataset compile times of 2.5E-1 .. 5.2E1 ms on a
Xeon 5120.  We *measure* our compiler's phases on the bench machine —
this is an honest measurement, not a model — and check the paper's
qualitative claims: preprocessing time grows with graph size and stays
small in absolute terms (milliseconds to tens of milliseconds).
"""

from _common import (
    DATASETS,
    MODELS,
    Metric,
    emit,
    format_table,
    get_dataset,
    register_bench,
    sci,
)
from repro import Compiler, build_model, init_weights, u250_default

PAPER_GCN_ROW = [2.5e-1, 2.2e-2, 5.7e-1, 2.68, 1.70, 5.1e1]


def compile_times():
    out = {}
    for model_name in MODELS:
        row = []
        for ds in DATASETS:
            data = get_dataset(ds)
            model = build_model(
                model_name, data.num_features, data.hidden_dim, data.num_classes
            )
            program = Compiler(u250_default()).compile(
                model, data, init_weights(model, seed=7)
            )
            row.append(program.timings.total_ms)
        out[model_name] = row
    return out


def build_table():
    times = compile_times()
    rows = [[m] + [sci(v) for v in times[m]] for m in MODELS]
    rows.append(["paper GCN"] + [sci(v) for v in PAPER_GCN_ROW])
    return format_table(
        ["Model"] + list(DATASETS), rows,
        title="Table IX: compiler preprocessing time (ms, measured)",
    ), times


@register_bench("table9_compile_time", tier="full", tags=("paper", "table"))
def _spec(ctx):
    """Table IX: measured compiler preprocessing wall time."""
    table, times = build_table()
    emit("table9_compile_time", table)
    # honest host wall-clock measurements -> "ms" time unit gets the
    # generous cross-machine tolerance band
    return {
        "compile_gcn_re_ms": Metric("compile_gcn_re_ms", times["GCN"][5], "ms"),
        "compile_gcn_co_ms": Metric("compile_gcn_co_ms", times["GCN"][1], "ms"),
    }


def test_table9(benchmark):
    (table, times) = benchmark.pedantic(build_table, rounds=1, iterations=1)
    emit("table9_compile_time", table)
    for model_name, row in times.items():
        for v in row:
            assert v < 30_000, "compilation should take at most seconds"
    # compile time grows with graph scale: Reddit >> Cora for every model
    for model_name in MODELS:
        assert times[model_name][5] > times[model_name][1]


def test_compile_phase_breakdown(benchmark):
    """Per-phase timing of the most expensive dataset in the profile."""

    def phases():
        data = get_dataset("FL")
        model = build_model("GCN", data.num_features, data.hidden_dim,
                            data.num_classes)
        program = Compiler(u250_default()).compile(
            model, data, init_weights(model, seed=7)
        )
        return program.timings

    t = benchmark.pedantic(phases, rounds=1, iterations=1)
    table = format_table(
        ["phase", "ms"],
        [
            ["parse + adjacency", f"{t.parse_s * 1e3:.3f}"],
            ["partitioning", f"{t.partition_s * 1e3:.3f}"],
            ["sparsity profiling", f"{t.profile_s * 1e3:.3f}"],
            ["total", f"{t.total_ms:.3f}"],
        ],
        title="Compiler phase breakdown (Flickr, GCN)",
    )
    emit("table9_phase_breakdown", table)
    assert t.total_s > 0

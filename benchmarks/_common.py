"""Shared infrastructure for the benchmark harness.

Every bench regenerates one of the paper's tables or figures.  Heavy
simulation results are cached per pytest session (datasets, compiled
programs, inference runs) so benches that share inputs — e.g. Table VII,
Fig. 13 and Table VIII all consume strategy-comparison runs — only
simulate once.

Dataset scales: full-size graphs for CiteSeer/Cora/PubMed; Flickr, NELL
and Reddit run scaled down by default so the whole harness finishes in
minutes on a laptop (the kernel-to-primitive behaviour is governed by
densities, which the generators preserve — see DESIGN.md).  Set
``REPRO_FULL_SCALE=1`` for full-scale runs where memory permits.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from functools import lru_cache

from repro import Engine, load_dataset, u250_default
from repro.config import AcceleratorConfig
from repro.engine import ProgramHandle
from repro.harness import format_table, geomean, sci, speedup_fmt, write_result
from repro.perf import BenchContext, Metric, register_bench
from repro.runtime import end_to_end_seconds

FULL_SCALE = os.environ.get("REPRO_FULL_SCALE", "0") == "1"

#: per-dataset generation parameters: (scale, feature_dim override)
BENCH_PROFILE = {
    "CI": (1.0, None),
    "CO": (1.0, None),
    "PU": (1.0, None),
    "FL": (0.25, None),
    "NE": (0.25, 16384),
    "RE": (0.05, None),
}
FULL_PROFILE = {
    "CI": (1.0, None),
    "CO": (1.0, None),
    "PU": (1.0, None),
    "FL": (1.0, None),
    "NE": (1.0, None),
    "RE": (0.2, None),
}
#: smaller instances for the pruning sweeps (many runs per dataset)
SWEEP_PROFILE = {
    "CI": (1.0, None),
    "CO": (1.0, None),
    "PU": (0.3, None),
    "FL": (0.1, None),
    "NE": (0.1, 8192),
    "RE": (0.02, None),
}

DATASETS = ("CI", "CO", "PU", "FL", "NE", "RE")
MODELS = ("GCN", "GraphSAGE", "GIN", "SGC")
STRATEGIES = ("S1", "S2", "Dynamic")


def profile(sweep: bool = False) -> dict:
    if FULL_SCALE:
        return FULL_PROFILE
    return SWEEP_PROFILE if sweep else BENCH_PROFILE


@lru_cache(maxsize=None)
def get_dataset(name: str, sweep: bool = False):
    scale, fdim = profile(sweep)[name]
    return load_dataset(name, scale=scale, feature_dim=fdim, seed=42)


def engine_for(config: AcceleratorConfig | None = None) -> Engine:
    """One Engine per accelerator config: program cache + device pool
    shared by every bench in the session (configs are frozen/hashable).
    The default config is normalised before the cache lookup so
    ``engine_for()`` and ``engine_for(u250_default())`` share an engine."""
    return _engine_for(config or u250_default())


@lru_cache(maxsize=None)
def _engine_for(config: AcceleratorConfig) -> Engine:
    return Engine(config, cache_capacity=256)


@lru_cache(maxsize=None)
def get_handle(model_name: str, ds_name: str, sparsity_pct: int = 0,
               sweep: bool = False) -> ProgramHandle:
    data = get_dataset(ds_name, sweep)
    return engine_for().compile(
        model_name, data, seed=7, prune=sparsity_pct / 100.0
    )


def get_program(model_name: str, ds_name: str, sparsity_pct: int = 0,
                sweep: bool = False):
    return get_handle(model_name, ds_name, sparsity_pct, sweep).program


@dataclass(frozen=True)
class RunSummary:
    """Scalar summary of one simulated run (results cached, outputs dropped)."""

    model: str
    dataset: str
    strategy: str
    sparsity_pct: int
    latency_ms: float
    total_cycles: float
    overhead_fraction: float
    runtime_overhead_s: float
    macs: int
    bytes_moved: int
    num_tasks: int
    num_pairs: int
    skipped_pairs: int
    load_balance: float
    end_to_end_s: float
    compile_ms: float


@lru_cache(maxsize=None)
def run(model_name: str, ds_name: str, strategy: str, sparsity_pct: int = 0,
        sweep: bool = False) -> RunSummary:
    """Simulate one (model, dataset, strategy, weight-sparsity) cell."""
    handle = get_handle(model_name, ds_name, sparsity_pct, sweep)
    program = handle.program
    result = engine_for().infer(handle, strategy=strategy)
    from repro.hw.report import Primitive

    return RunSummary(
        model=model_name,
        dataset=ds_name,
        strategy=strategy,
        sparsity_pct=sparsity_pct,
        latency_ms=result.latency_ms,
        total_cycles=result.total_cycles,
        overhead_fraction=result.overhead_fraction,
        runtime_overhead_s=result.runtime_overhead_seconds,
        macs=result.total_macs,
        bytes_moved=result.bytes_read + result.bytes_written,
        num_tasks=result.num_tasks,
        num_pairs=result.num_pairs,
        skipped_pairs=result.primitive_totals.get(Primitive.SKIP, 0),
        load_balance=result.load_balance(),
        end_to_end_s=end_to_end_seconds(program, result),
        compile_ms=program.timings.total_ms,
    )


def emit(name: str, table: str) -> str:
    """Print a rendered table and persist it under results/."""
    print("\n" + table)
    write_result(name, table)
    return table


__all__ = [
    "BENCH_PROFILE",
    "DATASETS",
    "MODELS",
    "STRATEGIES",
    "FULL_SCALE",
    "BenchContext",
    "Metric",
    "RunSummary",
    "emit",
    "engine_for",
    "format_table",
    "geomean",
    "get_dataset",
    "get_handle",
    "get_program",
    "profile",
    "register_bench",
    "run",
    "sci",
    "speedup_fmt",
]

"""E7 — Table VIII: geomean speedup per weight-sparsity band.

Aggregates the Fig. 11/12 sweep into the paper's four bands.  Paper
values: SO-S1 2.16x / 4.36x / 10.77x / 15.96x and SO-S2 1.38x / 1.64x /
2.11x / 5.03x for <50%, 50-70%, 70-90%, >90%.  Expected shape: both rows
increase monotonically across bands.
"""

from _common import (
    DATASETS,
    MODELS,
    Metric,
    emit,
    format_table,
    geomean,
    register_bench,
    run,
    speedup_fmt,
)

#: representative sparsity per band (paper sweeps continuously)
BANDS = {
    "<50%": (0, 30),
    "50-70%": (60,),
    "70-90%": (80,),
    ">90%": (95,),
}
PAPER = {
    "SO-S1": [2.16, 4.36, 10.77, 15.96],
    "SO-S2": [1.38, 1.64, 2.11, 5.03],
}


def band_geomeans(baseline):
    out = []
    for points in BANDS.values():
        ratios = []
        for model_name in MODELS:
            for ds in DATASETS:
                for s in points:
                    ratios.append(
                        run(model_name, ds, baseline, s, sweep=True).total_cycles
                        / run(model_name, ds, "Dynamic", s, sweep=True).total_cycles
                    )
        out.append(geomean(ratios))
    return out


def build_table():
    so_s1 = band_geomeans("S1")
    so_s2 = band_geomeans("S2")
    rows = [
        ["SO-S1 (measured)"] + [speedup_fmt(v) for v in so_s1],
        ["SO-S1 (paper)"] + [speedup_fmt(v) for v in PAPER["SO-S1"]],
        ["SO-S2 (measured)"] + [speedup_fmt(v) for v in so_s2],
        ["SO-S2 (paper)"] + [speedup_fmt(v) for v in PAPER["SO-S2"]],
    ]
    table = format_table(
        ["Sparsity of weights"] + list(BANDS), rows,
        title="Table VIII: average speedup (geometric mean) per sparsity band",
    )
    return table, so_s1, so_s2


@register_bench("table8_sparsity_bands", tier="full", tags=("paper", "table"))
def _spec(ctx):
    """Table VIII: geomean speedup per weight-sparsity band."""
    table, so_s1, so_s2 = build_table()
    emit("table8_sparsity_bands", table)
    return {
        "so_s1_top_band": Metric("so_s1_top_band", so_s1[-1], "x", "higher"),
        "so_s2_top_band": Metric("so_s2_top_band", so_s2[-1], "x", "higher"),
    }


def test_table8(benchmark):
    table, so_s1, so_s2 = benchmark.pedantic(build_table, rounds=1, iterations=1)
    emit("table8_sparsity_bands", table)
    # shape: speedups grow with weight sparsity for both baselines
    assert so_s1 == sorted(so_s1), f"SO-S1 bands not monotone: {so_s1}"
    assert so_s2[-1] > so_s2[0], f"SO-S2 top band should beat bottom: {so_s2}"
    # and S1 (which exploits nothing) suffers more than S2 at high sparsity
    assert so_s1[-1] > so_s2[-1]

"""E12 — Fig. 9: FPGA resource utilisation of the proposed design.

Regenerates the resource table (soft processor / per-CC / shell / totals
vs U250 availability) from the architecture parameters and checks the
published utilisation percentages.
"""

import pytest

from _common import Metric, emit, register_bench
from repro import estimate_resources, u250_default


@register_bench("fig9_resources", tier=("smoke", "full"), tags=("paper", "figure"))
def _spec(ctx):
    """Fig. 9: FPGA resource utilisation (analytical, machine-independent)."""
    report = estimate_resources(u250_default())
    emit("fig9_resources", report.format_table())
    assert report.fits
    util = report.utilization
    return {
        "lut_util": Metric("lut_util", util["LUT"], "frac"),
        "dsp_util": Metric("dsp_util", util["DSP"], "frac"),
        "uram_util": Metric("uram_util", util["URAM"], "frac"),
    }


def test_fig9(benchmark):
    report = benchmark.pedantic(
        lambda: estimate_resources(u250_default()), rounds=1, iterations=1
    )
    emit("fig9_resources", report.format_table())
    util = report.utilization
    assert report.fits
    # paper: 58.6% LUTs, 58.4% DSPs, 42.6% BRAMs, 87.5% URAMs
    assert util["LUT"] == pytest.approx(0.586, abs=0.02)
    assert util["DSP"] == pytest.approx(0.584, abs=0.01)
    assert util["BRAM"] == pytest.approx(0.426, abs=0.02)
    assert util["URAM"] == pytest.approx(0.875, abs=0.01)


def test_fig9_scaling(benchmark):
    """Resource scaling across psys shows why the paper stops at 16."""

    def sweep():
        out = {}
        for psys in (8, 16, 32):
            out[psys] = estimate_resources(u250_default().replace(psys=psys))
        return out

    reports = benchmark.pedantic(sweep, rounds=1, iterations=1)
    assert reports[8].fits and reports[16].fits
    assert not reports[32].fits  # 7 CCs at psys=32 exceed the U250

"""S1 — serving throughput: pool-size and arrival-rate sweeps.

Drives the :mod:`repro.serve` subsystem with a saturating Poisson stream
and reports virtual-clock throughput as the accelerator pool grows, plus
the latency/throughput trade-off as the offered arrival rate rises from
light load to overload.  The headline claims this bench checks:

- throughput scales near-linearly with pool size on a saturating
  workload (the earliest-idle dispatcher keeps devices busy);
- a warm program cache recompiles nothing on a repeated sweep;
- p95 latency degrades gracefully (queueing) as offered load crosses
  the pool's service capacity.
"""

from _common import Metric, emit, format_table, register_bench
from repro import u250_default
from repro.serve import InferenceRequest, InferenceServer, synthesize

CFG = u250_default()
MODELS = ("GCN", "GIN")
DATASETS = ("CO", "CI")
NUM_REQUESTS = 160
MAX_BATCH = 8


def _server(pool_size: int) -> InferenceServer:
    return InferenceServer(
        CFG,
        pool_size=pool_size,
        max_batch_size=MAX_BATCH,
        max_wait_s=1e-3,
        return_outputs=False,
    )


def _saturating_rate(pool_size: int) -> float:
    """Arrival rate offering ~8x the pool's service capacity."""
    probes = [InferenceRequest(model=m, dataset=d)
              for m in MODELS for d in DATASETS]
    return _server(1).saturating_rate(probes, pool_size=pool_size)


def _workload(rate_rps: float):
    return synthesize(
        NUM_REQUESTS,
        arrival="poisson",
        rate_rps=rate_rps,
        models=MODELS,
        datasets=DATASETS,
        seed=17,
    )


def _pool_sweep():
    rate = _saturating_rate(pool_size=8)
    workload = _workload(rate)
    rows = []
    for pool in (1, 2, 4, 8):
        server = _server(pool)
        server.serve(workload)          # cold: populate the cache
        warm = server.serve(workload)   # warm: pure pool scaling
        rows.append((pool, warm))
    return rows


def _pool_table(rows):
    base = rows[0][1].throughput_rps
    return format_table(
        ["pool", "throughput (req/s)", "scaling", "p95 (ms)", "util (mean)",
         "hit rate"],
        [[pool, f"{r.throughput_rps:,.0f}", f"{r.throughput_rps / base:.2f}x",
          f"{r.latency_p95_s * 1e3:.3f}",
          f"{sum(r.device_utilization) / len(r.device_utilization) * 100:.1f}%",
          f"{r.cache_hit_rate * 100:.0f}%"]
         for pool, r in rows],
        title="S1a: serving throughput vs pool size (warm cache, "
              "saturating Poisson arrivals)",
    )


@register_bench("serving_throughput", tier="full", tags=("serve",))
def _spec(ctx):
    """Serving throughput vs pool size (virtual clock, warm cache)."""
    rows = _pool_sweep()
    emit("serving_pool_scaling", _pool_table(rows))
    by_pool = {pool: r for pool, r in rows}
    return {
        "scaling_4pool": Metric(
            "scaling_4pool",
            by_pool[4].throughput_rps / by_pool[1].throughput_rps,
            "x",
            "higher",
        ),
        "warm_hit_rate": Metric(
            "warm_hit_rate", by_pool[4].cache_hit_rate, "frac", "higher"
        ),
    }


def test_pool_scaling(benchmark):
    """Warm throughput vs pool size on one saturating workload."""
    rows = benchmark.pedantic(_pool_sweep, rounds=1, iterations=1)
    emit("serving_pool_scaling", _pool_table(rows))
    by_pool = {pool: r for pool, r in rows}
    assert by_pool[2].throughput_rps >= 1.5 * by_pool[1].throughput_rps
    assert by_pool[4].throughput_rps >= 2.5 * by_pool[1].throughput_rps
    assert all(r.cache_misses == 0 for _, r in rows)


def test_arrival_rate_sweep(benchmark):
    """Latency/throughput trade-off as offered load crosses capacity."""

    def sweep():
        probes = [InferenceRequest(model=m, dataset=d)
                  for m in MODELS for d in DATASETS]
        # factor=1.0: an arrival rate of exactly ~1x pool capacity
        capacity = _server(1).saturating_rate(probes, pool_size=4, factor=1.0)
        rows = []
        for load in (0.25, 0.5, 1.0, 2.0, 4.0):
            server = _server(4)
            workload = _workload(load * capacity)
            server.serve(workload)
            warm = server.serve(workload)
            rows.append((load, warm))
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    table = format_table(
        ["offered load", "throughput (req/s)", "p50 (ms)", "p95 (ms)",
         "queue mean (ms)", "avg batch"],
        [[f"{load:.2f}x", f"{r.throughput_rps:,.0f}",
          f"{r.latency_p50_s * 1e3:.3f}", f"{r.latency_p95_s * 1e3:.3f}",
          f"{r.queue_mean_s * 1e3:.3f}", f"{r.avg_batch_size:.2f}"]
         for load, r in rows],
        title="S1b: latency vs offered load (pool of 4, warm cache)",
    )
    emit("serving_arrival_sweep", table)
    light, heavy = rows[0][1], rows[-1][1]
    # overload must queue: p95 grows, and batching amortizes more per batch
    assert heavy.latency_p95_s > light.latency_p95_s
    assert heavy.avg_batch_size >= light.avg_batch_size

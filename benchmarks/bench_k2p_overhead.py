"""E14 — §VI-B / §VIII-C: K2P mapping cost is O(K) and tiny per decision.

A real microbenchmark (pytest-benchmark measures the host, as the paper
measured the MicroBlaze): Algorithm 7's per-pair decision, plus the
modelled soft-processor budget, plus the O(K)-vs-O(N^3) complexity claim.
"""


from _common import Metric, emit, format_table, register_bench
from repro import u250_default
from repro.hw.soft_processor import SoftProcessor
from repro.runtime.analyzer import Analyzer, PairInfo

CFG = u250_default()


def _analysis_vs_compute_ratio() -> float:
    """§VI-B budget: K2P analysis seconds over one task's compute seconds."""
    soft = SoftProcessor(CFG)
    n2 = 512
    k = 32  # pairs per task
    analysis_s = soft.k2p_decision_seconds(k)
    macs = k * n2 * n2 * n2
    compute_s = macs / (CFG.gemm_macs_per_cycle * CFG.freq_hz)
    return analysis_s / compute_s


@register_bench("k2p_overhead", tier=("smoke", "full"), tags=("micro",))
def _spec(ctx):
    """§VI-B: K2P analysis budget vs task compute (modelled, deterministic)."""
    ratio = _analysis_vs_compute_ratio()
    emit("k2p_overhead", format_table(
        ["metric", "value"],
        [["analysis / task compute", f"{ratio:.2e}"]],
        title="K2P analysis vs task compute (one 512-wide task, K=32)",
    ))
    assert ratio < 0.05
    return {
        "analysis_compute_ratio": Metric(
            "analysis_compute_ratio", ratio, "frac"
        ),
    }


def test_k2p_decision_microbench(benchmark):
    """Latency of a single Algorithm 7 decision (host measurement)."""
    analyzer = Analyzer(CFG)
    info = PairInfo(0.03, 0.8, 512, 512, 128)
    decision = benchmark(analyzer.decide, info)
    assert decision.primitive.value == "SpDMM"


def test_k2p_scales_linearly(benchmark):
    """Modelled soft-processor time is linear in the pair count (O(K))."""

    def check():
        soft = SoftProcessor(CFG)
        t1 = soft.k2p_decision_seconds(1_000)
        t2 = soft.k2p_decision_seconds(10_000)
        return t1, t2

    t1, t2 = benchmark.pedantic(check, rounds=1, iterations=1)
    assert abs(t2 / t1 - 10.0) < 1e-9


def test_k2p_negligible_vs_task_compute(benchmark):
    """§VI-B: O(K) decisions per task vs O(|V| N2 + f1 N2^2) compute —
    the analysis budget is a vanishing fraction of the task's work."""

    ratio = benchmark.pedantic(
        _analysis_vs_compute_ratio, rounds=1, iterations=1
    )
    table = format_table(
        ["metric", "value"],
        [["analysis / task compute", f"{ratio:.2e}"]],
        title="K2P analysis vs task compute (one 512-wide task, K=32)",
    )
    emit("k2p_overhead", table)
    assert ratio < 0.05

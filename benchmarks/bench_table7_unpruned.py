"""E4 — Table VII: latency of S1 / S2 / Dynamic on unpruned models.

The paper's headline strategy comparison: for each of the four GNN models
and six datasets, run the three kernel-to-primitive mapping strategies on
the same simulated accelerator and report latency plus the speedup of
Dynamic over each static mapping (SO-S1, SO-S2).  Paper values are shown
alongside for shape comparison; geometric means reproduce the "2.13x /
1.59x average" claim's structure.
"""


from _common import (
    DATASETS,
    MODELS,
    Metric,
    emit,
    format_table,
    geomean,
    register_bench,
    run,
    sci,
    speedup_fmt,
)

#: paper Table VII Dynamic latencies (ms) per model, for side-by-side shape
PAPER_DYNAMIC = {
    "GCN": [7.7e-3, 4.7e-3, 6.3e-2, 8.8e0, 2.9e0, 8.4e1],
    "GraphSAGE": [33e-2, 11e-2, 42e-2, 19e0, 83e1, 331e0],
    "GIN": [3.3e-1, 1.1e-1, 3.7e-1, 1.2e1, 8.3e2, 2.7e2],
    "SGC": [4.3e-1, 1.5e-1, 5.1e-1, 1.27e-1, 8.83e2, 5.0e2],
}
PAPER_SO_S1 = {
    "GCN": [41.3, 21.5, 4.29, 1.13, 278, 1.10],
    "GraphSAGE": [1.93, 1.72, 1.56, 1.02, 2.05, 1.01],
    "GIN": [1.30, 1.40, 1.11, 1.13, 1.06, 1.15],
    "SGC": [1.23, 1.27, 1.08, 1.02, 1.06, 1.13],
}
PAPER_SO_S2 = {
    "GCN": [1.15, 1.19, 1.12, 1.11, 1.82, 1.42],
    "GraphSAGE": [1.94, 1.73, 1.65, 1.41, 2.05, 1.17],
    "GIN": [2.26, 2.31, 1.76, 1.73, 2.05, 1.25],
    "SGC": [1.95, 1.91, 1.55, 1.72, 1.99, 1.19],
}


def collect(model_name):
    cells = {}
    for ds in DATASETS:
        for strat in ("S1", "S2", "Dynamic"):
            cells[(ds, strat)] = run(model_name, ds, strat)
    return cells


def build_tables():
    blocks = []
    so_s1_all, so_s2_all = [], []
    for model_name in MODELS:
        cells = collect(model_name)
        rows = []
        for label in ("S1", "S2", "Dynamic"):
            rows.append(
                [label] + [sci(cells[(ds, label)].latency_ms) for ds in DATASETS]
            )
        so_s1 = [
            cells[(ds, "S1")].total_cycles / cells[(ds, "Dynamic")].total_cycles
            for ds in DATASETS
        ]
        so_s2 = [
            cells[(ds, "S2")].total_cycles / cells[(ds, "Dynamic")].total_cycles
            for ds in DATASETS
        ]
        so_s1_all += so_s1
        so_s2_all += so_s2
        rows.append(["SO-S1"] + [speedup_fmt(v) for v in so_s1])
        rows.append(["SO-S2"] + [speedup_fmt(v) for v in so_s2])
        rows.append(
            ["paper Dyn"] + [sci(v) for v in PAPER_DYNAMIC[model_name]]
        )
        rows.append(
            ["paper SO-S1"] + [speedup_fmt(v) for v in PAPER_SO_S1[model_name]]
        )
        rows.append(
            ["paper SO-S2"] + [speedup_fmt(v) for v in PAPER_SO_S2[model_name]]
        )
        blocks.append(
            format_table(
                [model_name] + list(DATASETS), rows,
                title=f"Table VII ({model_name}): latency (ms) on unpruned models",
            )
        )
    summary = format_table(
        ["geomean", "measured", "paper"],
        [
            ["SO-S1", speedup_fmt(geomean(so_s1_all)), "2.13x"],
            ["SO-S2", speedup_fmt(geomean(so_s2_all)), "1.59x"],
        ],
        title="Table VII summary: average speedup of Dynamic over static",
    )
    blocks.append(summary)
    return "\n\n".join(blocks), so_s1_all, so_s2_all


@register_bench("table7_unpruned", tier="full", tags=("paper", "table"))
def _spec(ctx):
    """Table VII: S1/S2/Dynamic latency on unpruned models."""
    table, so_s1, so_s2 = build_tables()
    emit("table7_unpruned", table)
    return {
        "so_s1_geomean": Metric("so_s1_geomean", geomean(so_s1), "x", "higher"),
        "so_s2_geomean": Metric("so_s2_geomean", geomean(so_s2), "x", "higher"),
    }


def test_table7(benchmark):
    table, so_s1, so_s2 = benchmark.pedantic(build_tables, rounds=1, iterations=1)
    emit("table7_unpruned", table)

    # shape claims: Dynamic never loses to a static strategy by more than
    # the model-vs-exact-cycle slack (the Analyzer decides on the
    # idealised Table IV model; the simulator charges exact tiled cycles)
    assert min(so_s1) > 0.9
    assert min(so_s2) > 0.9
    # average speedups are real (>1) and S1 suffers more than S2 overall
    assert geomean(so_s1) > 1.15
    assert geomean(so_s2) > 1.0
    assert geomean(so_s1) > geomean(so_s2)


def test_table7_gcn_sparse_input_blowup(benchmark):
    """The paper's sharpest shape: S1 collapses on GCN when H0 is sparse
    (CI/CO/NE) because Update(H0, W1) runs as dense GEMM."""

    def check():
        out = {}
        for ds in ("CI", "CO", "NE"):
            s1 = run("GCN", ds, "S1")
            dyn = run("GCN", ds, "Dynamic")
            out[ds] = s1.total_cycles / dyn.total_cycles
        return out

    ratios = benchmark.pedantic(check, rounds=1, iterations=1)
    for ds, ratio in ratios.items():
        assert ratio > 2.0, f"SO-S1 on GCN/{ds} should be large, got {ratio:.2f}"
    # NELL (61k-dim, 0.01%-dense features) is the paper's most extreme
    # case (278x); at the default bench profile its feature dimension is
    # capped, so we assert it stays in the blow-up club rather than that
    # it dominates.
    assert ratios["NE"] > 4.0

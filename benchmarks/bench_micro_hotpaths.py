"""M1 — microbenchmarks of the two vectorised runtime hot paths.

``repro bench --profile`` on the compile and inference paths surfaced two
dominant inner loops, both rewritten as single numpy passes in this PR:

1. ``formats.partition.block_nnz_grid`` — the per-block nonzero census
   every compile and re-profile runs.  The ``np.add.at`` scatter-add
   became a CSR-native ``np.bincount`` over contiguous ``indptr`` slices
   (the reference implementation is kept as
   ``block_nnz_grid_reference``).
2. ``runtime.analyzer.Analyzer.decide_batch`` — Algorithm 7 over all K
   pairs of a task in one vectorised pass instead of one Python
   ``decide()`` call (dataclass construction included) per pair.

Each bench times before/after on the same inputs, asserts the results
are bit-identical, and reports the speedup — the committed baseline under
``results/baselines/`` is the repo's record that the optimisation landed
(>= 2x on both at the default scale) and CI's guard that it stays in.
"""

import time

import numpy as np
import scipy.sparse as sp

from _common import Metric, emit, format_table, register_bench
from repro import u250_default
from repro.formats.partition import block_nnz_grid, block_nnz_grid_reference
from repro.hw.core import PairDecision
from repro.hw.report import PRIMITIVE_CODES
from repro.runtime.analyzer import Analyzer, PairInfo

#: default scale of both microbenches (identical in smoke and full: the
#: kernels are milliseconds, and the baseline must record the real ratio)
GRID_N = 6000
GRID_DENSITY = 0.02
GRID_BLOCK = 256
NUM_PAIRS = 100_000
REPEATS = 5


def _best_of(fn, repeats=REPEATS):
    best = float("inf")
    out = None
    for _ in range(repeats):
        t0 = time.perf_counter()
        out = fn()
        best = min(best, time.perf_counter() - t0)
    return out, best


def _grid_inputs():
    rng = np.random.default_rng(11)
    return sp.random(
        GRID_N, GRID_N, density=GRID_DENSITY, format="csr",
        dtype=np.float32, rng=rng,
    )


@register_bench(
    "micro_block_nnz_grid",
    tier=("smoke", "full"),
    tags=("micro", "hotpath"),
    # same-machine before/after ratio: the bincount-vs-scatter gap is
    # machine-stable in class but not in digits; the band still catches
    # the vectorisation being reverted (speedup collapsing toward 1x)
    tolerances={"speedup": 0.6},
)
def _grid_spec(ctx):
    """Hot path 1: block-nnz census, np.bincount vs np.add.at scatter."""
    mat = _grid_inputs()
    ref, ref_s = _best_of(
        lambda: block_nnz_grid_reference(mat, GRID_BLOCK, GRID_BLOCK)
    )
    new, new_s = _best_of(lambda: block_nnz_grid(mat, GRID_BLOCK, GRID_BLOCK))
    assert np.array_equal(ref, new), "vectorised grid must be bit-exact"
    speedup = ref_s / new_s
    emit("micro_block_nnz_grid", format_table(
        ["variant", "best of 5 (ms)", "speedup"],
        [
            ["np.add.at (reference)", f"{ref_s * 1e3:.3f}", "1.00x"],
            ["np.bincount", f"{new_s * 1e3:.3f}", f"{speedup:.2f}x"],
        ],
        title=(
            f"M1a: block_nnz_grid, {GRID_N}x{GRID_N} CSR "
            f"@ {GRID_DENSITY:.0%} density, {GRID_BLOCK}-blocks"
        ),
    ))
    assert speedup > 1.5, f"vectorised grid only {speedup:.2f}x faster"
    return {
        "speedup": Metric("speedup", speedup, "x", "higher"),
        "vectorized_ms": Metric("vectorized_ms", new_s * 1e3, "ms"),
    }


def _pair_inputs():
    rng = np.random.default_rng(23)
    ax = rng.uniform(0.0, 1.0, NUM_PAIRS)
    ay = rng.uniform(0.0, 1.0, NUM_PAIRS)
    # make every branch reachable: zeros (skip) and exact ties
    ax[::17] = 0.0
    ay[::29] = 0.0
    ay[::13] = ax[::13]
    return ax, ay


def _decide_scalar(analyzer, ax, ay):
    codes = np.empty(len(ax), dtype=np.int8)
    transposed = np.zeros(len(ax), dtype=bool)
    for i in range(len(ax)):
        dec: PairDecision = analyzer.decide(
            PairInfo(alpha_x=float(ax[i]), alpha_y=float(ay[i]),
                     m=512, n=512, d=128)
        )
        codes[i] = PRIMITIVE_CODES[dec.primitive]
        transposed[i] = dec.transposed
    return codes, transposed


@register_bench(
    "micro_k2p_decision_batch",
    tier=("smoke", "full"),
    tags=("micro", "hotpath"),
    tolerances={"speedup": 0.6},
)
def _k2p_spec(ctx):
    """Hot path 2: Algorithm 7 K2P mapping, batched vs per-pair decide()."""
    analyzer = Analyzer(u250_default())
    ax, ay = _pair_inputs()
    (ref_codes, ref_t), ref_s = _best_of(
        lambda: _decide_scalar(analyzer, ax, ay), repeats=3
    )
    (new_codes, new_t), new_s = _best_of(
        lambda: analyzer.decide_batch(ax, ay), repeats=REPEATS
    )
    assert np.array_equal(ref_codes, new_codes), "decisions must be bit-exact"
    assert np.array_equal(ref_t, new_t), "orientation flags must be bit-exact"
    speedup = ref_s / new_s
    emit("micro_k2p_decision_batch", format_table(
        ["variant", "best (ms)", "speedup"],
        [
            ["decide() per pair", f"{ref_s * 1e3:.3f}", "1.00x"],
            ["decide_batch()", f"{new_s * 1e3:.3f}", f"{speedup:.2f}x"],
        ],
        title=f"M1b: K2P mapping over {NUM_PAIRS:,} pairs",
    ))
    assert speedup > 1.5, f"batched K2P only {speedup:.2f}x faster"
    return {
        "speedup": Metric("speedup", speedup, "x", "higher"),
        "vectorized_ms": Metric("vectorized_ms", new_s * 1e3, "ms"),
    }


def test_micro_block_nnz_grid_bit_exact(benchmark):
    """The bincount census equals the scatter-add reference exactly."""
    mat = benchmark.pedantic(_grid_inputs, rounds=1, iterations=1)
    assert np.array_equal(
        block_nnz_grid(mat, GRID_BLOCK, GRID_BLOCK),
        block_nnz_grid_reference(mat, GRID_BLOCK, GRID_BLOCK),
    )


def test_micro_k2p_batch_bit_exact(benchmark):
    """decide_batch reproduces decide() over a branch-covering sample."""
    analyzer = Analyzer(u250_default())
    ax, ay = _pair_inputs()
    ax, ay = ax[:2000], ay[:2000]

    def check():
        return _decide_scalar(analyzer, ax, ay), analyzer.decide_batch(ax, ay)

    (ref_codes, ref_t), (new_codes, new_t) = benchmark.pedantic(
        check, rounds=1, iterations=1
    )
    assert np.array_equal(ref_codes, new_codes)
    assert np.array_equal(ref_t, new_t)

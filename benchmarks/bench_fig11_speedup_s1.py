"""E5 — Fig. 11: speedup of Dynamic over S1 vs. weight sparsity.

The paper prunes all weight matrices of each model to the same target
sparsity (0-100%) and plots Dynamic's speedup over the S1 static mapping.
Expected shape: speedup grows monotonically(ish) with weight sparsity —
S1 executes Update as dense GEMM and cannot exploit any of it.
"""


from _common import (
    DATASETS,
    MODELS,
    Metric,
    emit,
    format_table,
    geomean,
    register_bench,
    run,
    speedup_fmt,
)

SPARSITIES = (0, 50, 80, 95)


def series(model_name, baseline="S1"):
    out = {}
    for ds in DATASETS:
        out[ds] = [
            run(model_name, ds, baseline, s, sweep=True).total_cycles
            / run(model_name, ds, "Dynamic", s, sweep=True).total_cycles
            for s in SPARSITIES
        ]
    return out


def build_table(baseline="S1"):
    blocks = []
    for model_name in MODELS:
        data = series(model_name, baseline)
        rows = [
            [ds] + [speedup_fmt(v) for v in data[ds]] for ds in DATASETS
        ]
        blocks.append(
            format_table(
                [model_name] + [f"{s}%" for s in SPARSITIES],
                rows,
                title=(
                    f"Fig. 11 ({model_name}): speedup of Dynamic over "
                    f"{baseline} vs weight sparsity"
                ),
            )
        )
    return "\n\n".join(blocks)


def _band_geomeans(baseline="S1"):
    lo, hi = [], []
    for model_name in MODELS:
        data = series(model_name, baseline)
        for ds in DATASETS:
            lo.append(data[ds][0])
            hi.append(data[ds][-1])
    return geomean(lo), geomean(hi)


@register_bench("fig11_speedup_s1", tier="full", tags=("paper", "figure"))
def _spec(ctx):
    """Fig. 11: speedup of Dynamic over S1 vs weight sparsity."""
    emit("fig11_speedup_s1", build_table())
    lo, hi = _band_geomeans("S1")
    return {
        "geomean_unpruned": Metric("geomean_unpruned", lo, "x", "higher"),
        "geomean_95pct": Metric("geomean_95pct", hi, "x", "higher"),
    }


def test_fig11(benchmark):
    table = benchmark.pedantic(build_table, rounds=1, iterations=1)
    emit("fig11_speedup_s1", table)
    # shape: in aggregate the high-sparsity end beats the unpruned end
    # (S1 cannot exploit weight sparsity at all); individual small-graph
    # series can wobble when a pruned Update flips a whole partition's
    # mapping, so the claim is on the geomean.
    lo, hi = [], []
    for model_name in MODELS:
        data = series(model_name)
        for ds in DATASETS:
            lo.append(data[ds][0])
            hi.append(data[ds][-1])
            assert min(data[ds]) > 0.9, (model_name, ds, data[ds])
    from _common import geomean

    assert geomean(hi) > geomean(lo), "95% sparsity should beat unpruned"


def test_fig11_gcn_sparse_features_dominate(benchmark):
    """GCN on sparse-H0 datasets shows large speedups already unpruned."""

    def check():
        return run("GCN", "CI", "S1", 95, sweep=True).total_cycles / run(
            "GCN", "CI", "Dynamic", 95, sweep=True
        ).total_cycles

    v = benchmark.pedantic(check, rounds=1, iterations=1)
    assert v > 3.0

"""S2 — continuous batching: overload goodput vs the legacy batcher.

Drives one overloaded request stream (~10x a device's service capacity,
30% tagged interactive) through both serving schedulers and checks the
headline claims of the ``repro.sched`` subsystem:

1. the continuous scheduler's join-in-flight mechanism lifts goodput
   (requests meeting their SLO target per second) by >= 2x over the
   legacy fire-whole-batches loop under overload;
2. interactive p99 stays within its SLO target while the legacy batcher
   blows through it (queueing grows unboundedly at 10x load);
3. ``scheduler="legacy"`` remains bit-exact with the default server
   path (modulo host-wall-clock compile measurements).

All graded sweeps run against a warm program cache, so every number is
virtual-clock deterministic.

Runs two ways:

- ``pytest benchmarks/bench_continuous_batching.py`` — pytest-benchmark
  harness, rendering tables under results/;
- ``python benchmarks/bench_continuous_batching.py [--smoke]`` —
  standalone, used by CI's benchmark smoke job via ``repro.perf``.
"""

import argparse
import sys

from _common import Metric, emit, format_table, register_bench
from repro import u250_default
from repro.sched import AdmissionController, PoolAutoscaler, SLOPolicy
from repro.serve import InferenceRequest, InferenceServer, synthesize

CFG = u250_default()
MAX_BATCH = 8
OVERLOAD_FACTOR = 10.0
CLASS_SKEW = 0.3
#: interactive SLO target as a multiple of the warm single-request
#: service time — generous for continuous (joins bound queueing), hopeless
#: for legacy (overload queueing is many service times deep)
TARGET_FACTOR = 3.0
MIN_GOODPUT_RATIO = 2.0

SMOKE = dict(models=("GCN",), requests=120, pool=2)
FULL = dict(models=("GCN", "GIN"), requests=320, pool=4)


def _server(pool: int, scheduler: str = "legacy", policy=None,
            admission=None, autoscaler=None) -> InferenceServer:
    return InferenceServer(
        CFG,
        pool_size=pool,
        max_batch_size=MAX_BATCH,
        max_wait_s=1e-3,
        return_outputs=False,
        scheduler=scheduler,
        slo_policy=policy,
        admission=admission,
        autoscaler=autoscaler,
    )


def sweep(models, requests, pool):
    """Warm overload sweeps on both schedulers, plus the bit-exact check."""
    probes = [InferenceRequest(model=m, dataset="CO", seed=17)
              for m in models]
    probe_server = _server(1)
    exec_s = max(
        r.execute_s for r in probe_server.serve(probes).responses
    )
    # ~10x the pool's *batch-amortized* capacity: saturating_rate already
    # normalises per-request occupancy at full batches, so the legacy
    # batcher is genuinely overloaded, not just un-batched
    rate = probe_server.saturating_rate(
        probes, pool_size=pool, factor=OVERLOAD_FACTOR
    )
    policy = SLOPolicy.default(
        interactive_target_p99_s=TARGET_FACTOR * exec_s,
        bulk_queue_depth=max(64, requests),
    )
    workload = synthesize(
        requests,
        arrival="poisson",
        rate_rps=rate,
        models=models,
        datasets=("CO",),
        seed=17,
        class_skew=CLASS_SKEW,
    )

    legacy = _server(pool, policy=policy)
    legacy.serve(workload)                  # cold: populate the cache
    legacy_report = legacy.serve(workload)  # warm: graded sweep

    continuous = _server(
        pool, scheduler="continuous", policy=policy,
        admission=AdmissionController(policy),
        autoscaler=PoolAutoscaler(min_devices=1),
    )
    continuous.serve(workload)
    continuous_report = continuous.serve(workload)

    # scheduler="legacy" must be the same code path as the default server
    explicit = _server(pool, scheduler="legacy", policy=policy)
    explicit.serve(workload)
    explicit_report = explicit.serve(workload)
    bit_exact = _strip_wallclock(explicit_report.to_dict()) == \
        _strip_wallclock(legacy_report.to_dict())

    return {
        "exec_s": exec_s,
        "target_s": TARGET_FACTOR * exec_s,
        "legacy": legacy_report,
        "continuous": continuous_report,
        "bit_exact": bit_exact,
    }


def _strip_wallclock(d: dict) -> dict:
    # compile_s/compile_saved_s are *deliberately* host wall-clock: they
    # come from ProgramCache.get_or_compile, an allowlisted host-side
    # measurement (repro.staticcheck.rules_clock.WALLCLOCK_ALLOWLIST).
    # Everything else in the report is virtual-clock and must be
    # bit-identical between the legacy paths — so only these fields are
    # excluded from the equality check.
    d = dict(d)
    for key in ("compile_saved_s", "compile_s"):
        d.pop(key, None)
    metrics = d.get("metrics")
    if metrics:
        metrics = {k: dict(v) if isinstance(v, dict) else v
                   for k, v in metrics.items()}
        for key in ("serve.compile_s", "serve.compile_saved_s"):
            metrics.get("counters", {}).pop(key, None)
        metrics.pop("histograms", None)
        d["metrics"] = metrics
    return d


def _interactive_p99(report) -> float:
    return report.class_breakdown["interactive"]["p99_s"]


def _table(result) -> str:
    target_ms = result["target_s"] * 1e3
    rows = []
    for name in ("legacy", "continuous"):
        r = result[name]
        rows.append([
            name,
            f"{r.goodput_rps:,.0f}",
            f"{r.throughput_rps:,.0f}",
            f"{r.makespan_s * 1e3:.3f}",
            f"{_interactive_p99(r) * 1e3:.3f}",
            f"{r.joined_requests}",
            f"{r.shed_requests}/{r.deferred_requests}",
        ])
    return format_table(
        ["scheduler", "goodput (req/s)", "throughput", "makespan (ms)",
         f"inter p99 (ms, target {target_ms:.3f})", "joined",
         "shed/deferred"],
        rows,
        title="S2: continuous batching vs legacy under ~10x overload "
              "(warm cache, virtual clock)",
    )


@register_bench(
    "continuous_batching",
    tier=("smoke", "full"),
    tags=("serve", "sched", "scaling"),
    # all graded numbers are virtual-clock deterministic, but the
    # smoke/full instances differ (models, pool, stream length), so the
    # bands stay moderate
    tolerances={"goodput_ratio": 0.3, "interactive_p99_ms": 0.3,
                "joined_fraction": 0.3},
)
def _spec(ctx):
    """Continuous-batching goodput and interactive p99 under overload."""
    cfg = SMOKE if ctx.smoke else FULL
    result = sweep(**cfg)
    emit("bench_continuous_batching", _table(result))
    legacy, cont = result["legacy"], result["continuous"]
    assert result["bit_exact"], (
        "scheduler='legacy' diverged from the default server path"
    )
    ratio = cont.goodput_rps / legacy.goodput_rps
    assert ratio >= MIN_GOODPUT_RATIO, (
        f"continuous goodput only {ratio:.2f}x legacy under "
        f"{OVERLOAD_FACTOR:.0f}x overload (need >= {MIN_GOODPUT_RATIO}x)"
    )
    p99 = _interactive_p99(cont)
    assert p99 <= result["target_s"], (
        f"continuous interactive p99 {p99 * 1e3:.3f} ms violates the "
        f"{result['target_s'] * 1e3:.3f} ms SLO target"
    )
    return {
        "goodput_ratio": Metric("goodput_ratio", ratio, "x", "higher"),
        "interactive_p99_ms": Metric(
            "interactive_p99_ms", p99 * 1e3, "ms", "lower"
        ),
        "joined_fraction": Metric(
            "joined_fraction",
            cont.joined_requests / cont.num_requests,
            "frac",
            "higher",
        ),
        "continuous_goodput_rps": Metric(
            "continuous_goodput_rps", cont.goodput_rps, "req/s", "higher"
        ),
    }


def test_continuous_beats_legacy_under_overload(benchmark):
    """>=2x goodput and interactive p99 within SLO at ~10x overload."""
    result = benchmark.pedantic(
        lambda: sweep(**SMOKE), rounds=1, iterations=1
    )
    emit("bench_continuous_batching", _table(result))
    legacy, cont = result["legacy"], result["continuous"]
    assert result["bit_exact"]
    assert cont.goodput_rps >= MIN_GOODPUT_RATIO * legacy.goodput_rps
    assert _interactive_p99(cont) <= result["target_s"]
    assert cont.joined_requests > 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke", action="store_true",
        help="smoke instance (GCN/CO, 2 devices; the full tier runs a "
             "GCN+GIN mix on 4 devices)",
    )
    args = parser.parse_args(argv)
    cfg = SMOKE if args.smoke else FULL
    result = sweep(**cfg)
    print(_table(result))

    failures = []
    if not result["bit_exact"]:
        failures.append("scheduler='legacy' diverged from the default path")
    legacy, cont = result["legacy"], result["continuous"]
    ratio = cont.goodput_rps / legacy.goodput_rps
    if ratio < MIN_GOODPUT_RATIO:
        failures.append(
            f"goodput ratio {ratio:.2f}x below {MIN_GOODPUT_RATIO}x"
        )
    if _interactive_p99(cont) > result["target_s"]:
        failures.append("interactive p99 violates the SLO target")
    if failures:
        print("\nFAIL: " + "; ".join(failures))
        return 1
    print(f"\nOK: goodput {ratio:.2f}x legacy, interactive p99 "
          f"{_interactive_p99(cont) * 1e3:.3f} ms within "
          f"{result['target_s'] * 1e3:.3f} ms, "
          f"{cont.joined_requests}/{cont.num_requests} joined in flight")
    return 0


if __name__ == "__main__":
    sys.exit(main())

"""Benchmark-suite configuration: make `_common` importable and register
a session summary that tells the user where the rendered tables went."""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))

from repro.harness import results_dir  # noqa: E402


def pytest_sessionfinish(session, exitstatus):  # noqa: D103
    if exitstatus == 0:
        print(f"\n[repro] rendered tables written to {results_dir()}")

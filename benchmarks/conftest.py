"""Benchmark-suite configuration: make `_common` importable and register
a session summary that tells the user where the rendered tables went.

The path entry is *appended* (not prepended) so this directory can never
shadow ``tests/conftest.py`` — pytest puts the configured ``pythonpath``
entries (``src``, ``tests``) ahead of it.  Plain ``pytest`` only collects
``tests/`` (see pyproject.toml); the benchmarks run via
``pytest benchmarks/``.
"""

import sys
from pathlib import Path

_here = str(Path(__file__).parent)
if _here not in sys.path:
    sys.path.append(_here)

from repro.harness import results_dir  # noqa: E402


def pytest_sessionfinish(session, exitstatus):  # noqa: D103
    if exitstatus == 0:
        print(f"\n[repro] rendered tables written to {results_dir()}")

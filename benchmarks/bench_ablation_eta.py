"""A1 — ablation: the load-balance factor eta (§VI-C).

The compiler requires at least eta * N_CC tasks per kernel.  The paper
sets eta = 4 (following GPOP): eta = 1 risks long idle tails when block
workloads are skewed; larger eta shrinks partitions, hurting locality and
increasing K2P decisions.  This bench sweeps eta and reports latency and
per-kernel load balance on a workload big enough for the constraint to
bind.
"""

from _common import Metric, emit, engine_for, format_table, get_dataset, register_bench
from repro import u250_default


def sweep():
    data = get_dataset("FL")
    out = []
    for eta in (1, 2, 4, 8):
        cfg = u250_default().replace(eta=eta, min_partition_dim=64)
        engine = engine_for(cfg)
        handle = engine.compile("GCN", data, seed=7)
        res = engine.infer(handle)
        out.append(
            (eta, handle.program.n1, handle.program.n2, res.latency_ms,
             res.load_balance(), res.num_tasks)
        )
    return out


def _table(rows):
    return format_table(
        ["eta", "N1", "N2", "latency (ms)", "load balance", "tasks"],
        [[e, n1, n2, f"{lat:.3f}", f"{lb:.3f}", t] for e, n1, n2, lat, lb, t in rows],
        title="A1: eta load-balance factor sweep (GCN on Flickr)",
    )


@register_bench("ablation_eta", tier="full", tags=("ablation",))
def _spec(ctx):
    """A1: eta load-balance factor sweep."""
    rows = sweep()
    emit("ablation_eta", _table(rows))
    by_eta = {r[0]: r for r in rows}
    return {
        "latency_eta4_ms": Metric("latency_eta4_ms", by_eta[4][3], "model-ms"),
        "balance_eta4": Metric("balance_eta4", by_eta[4][4], "frac", "higher"),
    }


def test_ablation_eta(benchmark):
    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    emit("ablation_eta", _table(rows))
    by_eta = {r[0]: r for r in rows}
    # more tasks with larger eta (smaller partitions)
    assert by_eta[8][5] >= by_eta[1][5]
    # load balance should not collapse at the paper's eta = 4
    assert by_eta[4][4] > 0.5

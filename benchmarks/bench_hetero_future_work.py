"""E15 — §IX future work: heterogeneous CPU+GPU+FPGA execution.

The paper's conclusion sketches a platform where "GPU is effective for
dense primitives, FPGA is effective for sparse primitives and the CPU can
execute complex control flow".  This bench prices that split with the
repo's heterogeneous runtime and reports when it pays off: dense-feature
workloads (Reddit) route their GEMM pairs to the GPU and win; sparse
workloads (CiteSeer, NELL) stay on the FPGA and see no benefit — i.e.
the value of the heterogeneous extension *is itself sparsity-dependent*.
"""

from _common import Metric, emit, format_table, get_program, register_bench, speedup_fmt
from repro.hetero import HeterogeneousRuntime


@register_bench("hetero_future_work", tier="full", tags=("hetero",))
def _spec(ctx):
    """§IX future work: heterogeneous CPU+GPU+FPGA vs FPGA-only."""
    table, gains = build_table()
    emit("hetero_future_work", table)
    return {
        "gain_re": Metric("gain_re", gains["RE"][0], "x", "higher"),
        "gain_ci": Metric("gain_ci", gains["CI"][0], "x", "higher"),
    }


def build_table():
    rt = HeterogeneousRuntime()
    rows = []
    gains = {}
    for ds in ("CI", "CO", "PU", "FL", "NE", "RE"):
        program = get_program("GCN", ds)
        het = rt.run(program)
        fpga = rt.run_fpga_only(program)
        gain = fpga.total_seconds / het.total_seconds
        gains[ds] = (gain, het)
        rows.append([
            ds,
            f"{fpga.latency_ms:.4f}",
            f"{het.latency_ms:.4f}",
            speedup_fmt(gain),
            het.device_pairs.get("GPU", 0),
            het.device_pairs.get("FPGA", 0),
            f"{het.transfer_seconds * 1e3:.4f}",
        ])
    table = format_table(
        ["Dataset", "FPGA-only (ms)", "hetero (ms)", "gain",
         "GPU pairs", "FPGA pairs", "PCIe (ms)"],
        rows,
        title="SIX future work: heterogeneous CPU+GPU+FPGA vs FPGA-only (GCN)",
    )
    return table, gains


def test_hetero_future_work(benchmark):
    table, gains = benchmark.pedantic(build_table, rounds=1, iterations=1)
    emit("hetero_future_work", table)
    # dense-feature Reddit gains from GPU routing; hetero never loses
    assert gains["RE"][0] > 1.5
    for ds, (gain, _) in gains.items():
        assert gain > 0.9, f"hetero should not lose on {ds}: {gain:.2f}"
    # sparse CiteSeer keeps most pairs on the FPGA
    het_ci = gains["CI"][1]
    assert het_ci.device_pairs["FPGA"] >= het_ci.device_pairs.get("GPU", 0)

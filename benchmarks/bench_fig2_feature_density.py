"""E2 — Fig. 2: density of the feature matrices across GCN stages.

Regenerates the paper's layer-stage density profile: input features,
after Update() of layer 1, after Aggregate()+sigma() of layer 1, after
Update() of layer 2, after Aggregate()+sigma() of layer 2 — the dynamic
sparsity that motivates runtime K2P mapping (intermediate densities are
unknown at compile time).
"""

from _common import (
    DATASETS,
    Metric,
    emit,
    format_table,
    get_dataset,
    register_bench,
)
from repro.gnn import build_model, init_weights
from repro.gnn.functional import layerwise_feature_densities


@register_bench("fig2_feature_density", tier="full", tags=("paper", "figure"))
def _spec(ctx):
    """Fig. 2: feature-matrix density per GCN stage."""
    emit("fig2_feature_density", build_table())
    data = get_dataset("CI")
    model = build_model(
        "GCN", data.num_features, data.hidden_dim, data.num_classes
    )
    stages = layerwise_feature_densities(
        model, data.a, data.h0, init_weights(model, seed=7)
    )
    return {
        "density_L1_update_CI": Metric(
            "density_L1_update_CI", stages[1][1], "frac"
        ),
    }


def build_table():
    header = ["Dataset", "input", "L1 Update", "L1 Agg+sigma", "L2 Update",
              "L2 Agg"]
    rows = []
    for name in DATASETS:
        data = get_dataset(name)
        model = build_model(
            "GCN", data.num_features, data.hidden_dim, data.num_classes
        )
        stages = layerwise_feature_densities(
            model, data.a, data.h0, init_weights(model, seed=7)
        )
        rows.append([name] + [f"{d:.3f}" for _, d in stages])
    return format_table(
        header, rows,
        title="Fig. 2: feature-matrix density per GCN stage",
    )


def test_fig2(benchmark):
    table = benchmark.pedantic(build_table, rounds=1, iterations=1)
    emit("fig2_feature_density", table)
    # paper shape: the Update() densifies sparse inputs; stages differ
    # across layers (the reason static mapping is suboptimal)
    for name in ("CI", "CO", "NE"):
        data = get_dataset(name)
        model = build_model(
            "GCN", data.num_features, data.hidden_dim, data.num_classes
        )
        stages = layerwise_feature_densities(
            model, data.a, data.h0, init_weights(model, seed=7)
        )
        dens = [d for _, d in stages]
        assert dens[1] > dens[0], f"{name}: Update should densify sparse input"

"""E11 — Table X: comparison with BoostGCN and HyGCN (GCN model).

Both baselines use the S1 static mapping on their own platforms (modelled
rooflines; Table V/X specs).  Paper: Dynasparse 2.7x over BoostGCN and
171x over HyGCN on average, despite 1.25x/9x lower peak performance;
N/A entries mirrored (BoostGCN: NELL; HyGCN: Flickr, NELL).
"""

from _common import (
    DATASETS,
    Metric,
    emit,
    format_table,
    geomean,
    get_dataset,
    register_bench,
    run,
    sci,
    speedup_fmt,
)
from repro import build_model
from repro.baselines import accelerator_latency

PAPER = {
    "BoostGCN": [1.9e-2, 2.5e-2, 1.6e-1, 4.0e1, None, 1.9e2],
    "HyGCN": [2.1e-2, 3e-1, 6.4e1, None, None, 2.9e2],
    "Dynasparse": [7.7e-3, 4.7e-3, 6.3e-2, 8.8e0, 2.9e0, 1.0e2],
}


def collect():
    rows = []
    speedups = {"BoostGCN": [], "HyGCN": []}
    for ds in DATASETS:
        data = get_dataset(ds)
        model = build_model("GCN", data.num_features, data.hidden_dim,
                            data.num_classes)
        dyn = run("GCN", ds, "Dynamic")
        row = [ds, sci(dyn.latency_ms)]
        for name in ("BoostGCN", "HyGCN"):
            t = accelerator_latency(name, model, data)
            if t is None:
                row += ["N/A", "N/A"]
            else:
                ratio = t * 1e3 / dyn.latency_ms
                speedups[name].append(ratio)
                row += [sci(t * 1e3), speedup_fmt(ratio)]
        rows.append(row)
    return rows, speedups


def build_table():
    rows, speedups = collect()
    rows.append(
        ["geomean", "",
         "", speedup_fmt(geomean(speedups["BoostGCN"])),
         "", speedup_fmt(geomean(speedups["HyGCN"]))]
    )
    rows.append(["paper", "", "", "2.7x", "", "171x"])
    table = format_table(
        ["Dataset", "Dynasparse (ms)", "BoostGCN (ms)", "speedup",
         "HyGCN (ms)", "speedup"],
        rows,
        title="Table X: accelerator execution latency vs GNN accelerators (GCN)",
    )
    return table, speedups


@register_bench("table10_accelerators", tier="full", tags=("paper", "table"))
def _spec(ctx):
    """Table X: speedup vs BoostGCN / HyGCN rooflines (GCN)."""
    table, speedups = build_table()
    emit("table10_accelerators", table)
    return {
        "geomean_boostgcn": Metric(
            "geomean_boostgcn", geomean(speedups["BoostGCN"]), "x", "higher"
        ),
        "geomean_hygcn": Metric(
            "geomean_hygcn", geomean(speedups["HyGCN"]), "x", "higher"
        ),
    }


def test_table10(benchmark):
    table, speedups = benchmark.pedantic(build_table, rounds=1, iterations=1)
    emit("table10_accelerators", table)
    # shapes: Dynasparse wins on average against both, HyGCN worse than
    # BoostGCN, and the N/A pattern matches the paper
    assert geomean(speedups["BoostGCN"]) > 1.0
    assert geomean(speedups["HyGCN"]) > geomean(speedups["BoostGCN"])
    data = get_dataset("NE")
    model = build_model("GCN", data.num_features, data.hidden_dim,
                        data.num_classes)
    assert accelerator_latency("BoostGCN", model, data) is None
    assert accelerator_latency("HyGCN", model, data) is None

"""D1 — dyngraph: patch-vs-recompile cost and serving under graph churn.

Two claims, both measured (host wall-clock for the patch/compile costs,
virtual-clock serving metrics for the churn stream):

1. patching a compiled program for a <=1%-edge delta is >=5x cheaper
   than a full recompile (compile + partitioned-view materialisation)
   on the mid-size synthetic dataset (PubMed at scale 0.5);
2. under an interleaved infer/mutate stream, a server that patches
   cached programs sustains higher throughput than one that evicts and
   recompiles.

Runs two ways:

- ``pytest benchmarks/bench_dyngraph_churn.py`` — the pytest-benchmark
  harness, rendering tables under results/;
- ``python benchmarks/bench_dyngraph_churn.py [--smoke]`` — standalone,
  used by CI's benchmark smoke job (``--smoke`` shrinks the instance and
  only sanity-checks that patching beats recompiling).
"""

import argparse
import sys

from _common import Metric, emit, format_table, register_bench
from repro.dyngraph import churn_experiment, patch_vs_recompile

#: microbenchmark instance: mid-size dataset, ~1% edge churn per delta
MICRO = dict(dataset="PU", scale=1.0, model_name="GCN", edge_fraction=0.01)
SMOKE_MICRO = dict(dataset="CO", scale=1.0, model_name="GCN", edge_fraction=0.01)
CHURN = dict(dataset="PU", scale=0.25, model_name="GCN", num_requests=48,
             mutation_every=6, edge_fraction=0.005, pool_size=2)
SMOKE_CHURN = dict(dataset="CO", scale=1.0, model_name="GCN", num_requests=24,
                   mutation_every=6, edge_fraction=0.01, pool_size=2)
#: acceptance floor for the full-size microbenchmark
MIN_SPEEDUP = 5.0


def _micro_table(results) -> str:
    return format_table(
        ["dataset", "nnz(A)", "delta edges", "recompile (ms)", "patch (ms)",
         "speedup", "dirty blocks", "K2P re-decisions"],
        [[r.dataset, f"{r.nnz:,}", r.delta_edges,
          f"{r.recompile_s * 1e3:.2f}", f"{r.patch_s * 1e3:.2f}",
          f"{r.speedup:.1f}x", r.dirty_blocks, r.reanalyzed_pairs]
         for r in results],
        title="D1a: program patch vs full recompile (<=1% edge delta)",
    )


def _churn_table(reports) -> str:
    rows = []
    for policy in ("patch", "evict"):
        r = reports[policy]
        rows.append([
            policy, f"{r.throughput_rps:,.0f}",
            f"{r.latency_p50_s * 1e3:.3f}", f"{r.latency_p95_s * 1e3:.3f}",
            f"{r.cache_hit_rate * 100:.0f}%",
            f"{r.compile_s * 1e3:.1f}", f"{r.patch_s * 1e3:.1f}",
            r.num_patches, r.mutation_evictions,
        ])
    return format_table(
        ["policy", "throughput (req/s)", "p50 (ms)", "p95 (ms)", "hit rate",
         "compile (ms)", "patch (ms)", "patched", "evicted"],
        rows,
        title="D1b: churn serving — patch vs evict-and-recompile",
    )


@register_bench(
    "dyngraph_churn",
    tier=("smoke", "full"),
    tags=("dyngraph", "serve"),
    # both metrics are ratios of same-machine wall-clock costs: stable in
    # sign and magnitude class, but jittery enough to need a wide band
    tolerances={"patch_speedup": 0.75, "patch_vs_evict_throughput": 0.75},
)
def _spec(ctx):
    """Dyngraph: patch-vs-recompile speedup and churn serving throughput."""
    micro_cfg, churn_cfg = (
        (SMOKE_MICRO, SMOKE_CHURN) if ctx.smoke else (MICRO, CHURN)
    )
    micro = patch_vs_recompile(
        **micro_cfg, repeats=3 if ctx.smoke else 5, seed=0
    )
    emit("bench_dyngraph_patch", _micro_table([micro]))
    reports = churn_experiment(**churn_cfg, seed=0)
    emit("bench_dyngraph_churn", _churn_table(reports))
    patch_r, evict_r = reports["patch"], reports["evict"]
    # sanity floor only (the standalone test keeps the strict >=5x gate;
    # measured inside the full suite the ratio sags under memory
    # pressure) — regression tracking is the baseline comparison's job
    assert micro.speedup > (1.0 if ctx.smoke else 2.0), (
        f"patching barely beats recompiling: {micro.speedup:.1f}x"
    )
    assert patch_r.num_patches > 0
    return {
        "patch_speedup": Metric("patch_speedup", micro.speedup, "x", "higher"),
        "patch_vs_evict_throughput": Metric(
            "patch_vs_evict_throughput",
            patch_r.throughput_rps / evict_r.throughput_rps,
            "x",
            "higher",
        ),
    }


def test_patch_vs_recompile(benchmark):
    """>=5x cheaper to patch a <=1% delta than to recompile (mid-size)."""
    result = benchmark.pedantic(
        lambda: patch_vs_recompile(**MICRO, repeats=5, seed=0),
        rounds=1, iterations=1,
    )
    emit("bench_dyngraph_patch", _micro_table([result]))
    assert result.delta_edges <= 0.011 * result.nnz
    assert result.speedup >= MIN_SPEEDUP, (
        f"patching must be >={MIN_SPEEDUP}x cheaper than recompiling, "
        f"got {result.speedup:.1f}x"
    )


def test_churn_serving_throughput(benchmark):
    """Patching sustains higher churn throughput than evict-and-recompile."""
    reports = benchmark.pedantic(
        lambda: churn_experiment(**CHURN, seed=0), rounds=1, iterations=1
    )
    emit("bench_dyngraph_churn", _churn_table(reports))
    patch_r, evict_r = reports["patch"], reports["evict"]
    assert patch_r.num_patches > 0 and evict_r.mutation_evictions > 0
    assert patch_r.throughput_rps > evict_r.throughput_rps


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke", action="store_true",
        help="small instance, relaxed assertion (CI smoke job)",
    )
    args = parser.parse_args(argv)

    micro_cfg, churn_cfg = (
        (SMOKE_MICRO, SMOKE_CHURN) if args.smoke else (MICRO, CHURN)
    )
    micro = patch_vs_recompile(**micro_cfg, repeats=3 if args.smoke else 5,
                               seed=0)
    print(_micro_table([micro]))
    reports = churn_experiment(**churn_cfg, seed=0)
    print()
    print(_churn_table(reports))

    patch_r, evict_r = reports["patch"], reports["evict"]
    failures = []
    if micro.speedup <= (1.0 if args.smoke else MIN_SPEEDUP):
        failures.append(
            f"patch speedup {micro.speedup:.1f}x below "
            f"{1.0 if args.smoke else MIN_SPEEDUP}x"
        )
    if patch_r.num_patches == 0:
        failures.append("no programs were patched in the churn stream")
    if not args.smoke and patch_r.throughput_rps <= evict_r.throughput_rps:
        failures.append("patch policy did not beat evict throughput")
    if failures:
        print("\nFAIL: " + "; ".join(failures))
        return 1
    print(f"\nOK: patch {micro.speedup:.1f}x cheaper than recompile; "
          f"churn throughput patch {patch_r.throughput_rps:,.0f} vs "
          f"evict {evict_r.throughput_rps:,.0f} req/s")
    return 0


if __name__ == "__main__":
    sys.exit(main())

#!/usr/bin/env python
"""Post-run analysis: Gantt timeline, roofline regimes, strategy diff.

Runs GCN on PubMed under Dynamic and S1, then shows (a) the task schedule
across the seven Computation Cores, (b) which kernels are compute- vs
memory-bound — the regime split that decides where dynamic mapping can
win — and (c) a per-kernel attribution of the SO-S1 speedup.
"""

from repro import Engine
from repro.analysis import classify_kernels, render_gantt
from repro.analysis.compare import format_comparison


def main() -> None:
    engine = Engine()
    handle = engine.compile("GCN", "PU", seed=0)

    results = {
        strat: engine.infer(handle, strategy=strat)
        for strat in ("Dynamic", "S1")
    }

    dyn = results["Dynamic"]
    print(dyn.format_report())

    print("\n--- schedule (Algorithm 8) ---")
    print(render_gantt(dyn, width=90))

    print("\n--- roofline regimes ---")
    for c in classify_kernels(dyn):
        print(" ", c.describe())

    print("\n--- Dynamic vs S1, per kernel ---")
    print(format_comparison(dyn, results["S1"]))
    print("\nDynamic only beats S1 on compute-bound kernels whose "
          "primitives it remapped;\nmemory-bound kernels cost the same "
          "under any mapping.")


if __name__ == "__main__":
    main()

#!/usr/bin/env python
"""Continuous batching: SLO-aware serving under overload.

The `repro.sched` subsystem replaces the legacy fire-whole-batches
serving loop with an event-driven continuous scheduler:

1. tag a synthetic workload with SLO classes (`class_skew` controls the
   interactive fraction);
2. serve the same overloaded stream through the legacy batcher and the
   continuous scheduler and compare goodput — requests that met their
   SLO target per second;
3. join-in-flight: same-program requests attach to an execution already
   on a device at the next layer boundary, at zero added service cost;
4. admission control sheds hopeless interactive requests and defers
   bulk ones instead of letting queues grow without bound;
5. the pool autoscaler grows the active device set under backlog and
   parks devices again when the burst drains.
"""

from repro.sched import AdmissionController, PoolAutoscaler, SLOPolicy
from repro.serve import InferenceServer, synthesize


def main() -> None:
    # 1. a bursty overloaded workload: 30% interactive, 70% bulk -------
    requests = synthesize(
        48,
        arrival="poisson",
        rate_rps=4e5,
        models=("GCN",),
        datasets=("CO",),
        seed=11,
        class_skew=0.3,
    )
    n_inter = sum(1 for r in requests if r.slo == "interactive")
    print(f"workload: {len(requests)} requests, {n_inter} interactive, "
          f"{len(requests) - n_inter} bulk (poisson @ 400k req/s)")

    # 2. both schedulers grade against the same SLO policy -------------
    policy = SLOPolicy.default(interactive_target_p99_s=2e-4)

    legacy = InferenceServer(pool_size=2, max_batch_size=8,
                             slo_policy=policy)
    legacy.serve(requests)                    # cold: populate the cache
    legacy_report = legacy.serve(requests)    # warm: graded sweep

    continuous = InferenceServer(
        pool_size=2,
        max_batch_size=8,
        scheduler="continuous",
        slo_policy=policy,
        admission=AdmissionController(policy),
        autoscaler=PoolAutoscaler(min_devices=1),
    )
    continuous.serve(requests)
    report = continuous.serve(requests)

    print("\nscheduler comparison (warm cache, virtual clock):")
    for name, r in (("legacy", legacy_report), ("continuous", report)):
        p99 = r.class_breakdown["interactive"]["p99_s"]
        print(f"  {name:>10}: goodput {r.goodput_rps:10,.0f} req/s, "
              f"interactive p99 {p99 * 1e3:7.3f} ms, "
              f"{r.num_batches} executions")
    ratio = report.goodput_rps / legacy_report.goodput_rps
    print(f"  continuous goodput is {ratio:.2f}x legacy under overload")

    # 3. join-in-flight is where the win comes from --------------------
    print(f"\njoin-in-flight: {report.joined_requests}/"
          f"{report.num_requests} requests joined an execution already "
          f"on a device (zero added service time)")

    # 4. admission control + 5. autoscaling ----------------------------
    print(f"admission: shed={report.shed_requests} "
          f"deferred={report.deferred_requests} "
          f"preemptions={report.preemptions} "
          f"max queue depth={report.max_queue_depth}")
    print(f"autoscaler: finished with {report.active_devices} active "
          f"device(s), {len(report.autoscaler_events)} scaling event(s)")
    for ev in report.autoscaler_events:
        print(f"  t={ev['t_s'] * 1e3:8.4f} ms  {ev['from']} -> {ev['to']} "
              f"({ev['reason']})")

    # the report carries the full per-class breakdown ------------------
    print()
    print(report.format_report())


if __name__ == "__main__":
    main()

#!/usr/bin/env python
"""Sparsity profiling: reproduce the paper's motivation figures (Figs. 1-2).

Profiles (a) the adjacency-matrix densities and their per-block spread,
and (b) the density of the GCN feature matrix at every kernel boundary —
the dynamic sparsity that static mapping cannot see because intermediate
densities only exist at runtime.
"""

import numpy as np

from repro import build_model, init_weights, load_dataset
from repro.formats.density import density
from repro.formats.partition import PartitionedMatrix
from repro.gnn.functional import layerwise_feature_densities
from repro.harness import format_table

DATASETS = ("CI", "CO", "PU")


def main() -> None:
    rows = []
    for name in DATASETS:
        data = load_dataset(name)
        n1 = max(data.num_vertices // 8, 1)
        pm = PartitionedMatrix(data.a, n1, n1, name="A")
        grid = pm.density_grid
        rows.append([
            name,
            f"{density(data.a) * 100:.4f}%",
            f"{grid.min() * 100:.4f}%",
            f"{grid.max() * 100:.4f}%",
            f"{grid.max() / max(np.median(grid), 1e-12):.1f}x",
        ])
    print(format_table(
        ["dataset", "density(A)", "min block", "max block", "max/median"],
        rows, title="Fig. 1: adjacency density varies across blocks",
    ))

    print()
    rows = []
    for name in DATASETS:
        data = load_dataset(name)
        model = build_model("GCN", data.num_features, data.hidden_dim,
                            data.num_classes)
        stages = layerwise_feature_densities(
            model, data.a, data.h0, init_weights(model, seed=0)
        )
        rows.append([name] + [f"{d:.3f}" for _, d in stages])
    print(format_table(
        ["dataset", "input", "L1 Update", "L1 Agg+relu", "L2 Update", "L2 Agg"],
        rows,
        title="Fig. 2: feature density changes stage to stage at runtime",
    ))
    print("\nThe input can be <1% dense while intermediates exceed 50% — "
          "the reason a single static kernel-to-primitive mapping loses.")


if __name__ == "__main__":
    main()

#!/usr/bin/env python
"""Engine quickstart: one facade over compile, infer, mutate and serve.

The `repro.Engine` owns the program cache, the simulated device pool and
the backend registry, so the whole Dynasparse workflow is four calls:

1. `engine.compile(model, graph)` — cached per (model, graph, config)
   fingerprint;
2. `engine.infer(handle, backend=...)` — the cycle-accurate simulator,
   the CPU/GPU framework rooflines, or the §IX heterogeneous platform;
3. `engine.mutate(handle, delta)` — dynamic-graph support: the compiled
   program is patched in place of a recompile;
4. `engine.serve(requests)` — batched multi-device serving sharing the
   same cache and pool.
"""

from repro import Engine, GraphDelta, InferenceRequest, MutableGraph, load_dataset


def main() -> None:
    engine = Engine(pool_size=2)

    # 1. compile — the second call is a cache hit
    handle = engine.compile("GCN", "CO", scale=0.5, seed=0)
    again = engine.compile("GCN", "CO", scale=0.5, seed=0)
    print(f"compiled {handle.model_name} on {handle.data_name}: "
          f"{handle.program.num_kernels} kernels, "
          f"compile {handle.compile_s * 1e3:.2f} ms "
          f"(second call cache hit: {again.cache_hit})")

    # 2. infer — every registered backend, same handle
    print("\nbackends:")
    for backend in ("simulated", "cpu", "gpu", "hetero"):
        result = engine.infer(handle, backend=backend)
        extra = ""
        if backend == "simulated":
            prims = {p.value: c for p, c in result.primitive_totals.items()}
            extra = f"  primitives {prims}"
        print(f"  {backend:>9}: {result.latency_ms:10.4f} ms{extra}")

    # 3. mutate — a dynamic graph patches instead of recompiling
    graph = MutableGraph(load_dataset("CO", scale=0.5, seed=0),
                         graph_id="cora-live")
    live = engine.compile("GCN", graph, seed=0)
    report = engine.mutate(
        live, GraphDelta.edges(inserts=[(0, 7), (3, 11)], deletes=[(1, 2)])
    )
    print(f"\nmutation: patched={report.patched} in "
          f"{report.wall_s * 1e3:.2f} ms "
          f"({report.dirty_blocks} dirty blocks, "
          f"{report.decision_flips} K2P flips); "
          f"graph now v{graph.version}")
    print(f"post-mutation latency: "
          f"{engine.infer(live).latency_ms:.4f} ms")

    # 4. serve — traffic through the same cache and pool
    requests = [
        InferenceRequest(model="GCN", dataset="CO", scale=0.5, seed=0,
                         arrival_s=i * 1e-4)
        for i in range(12)
    ]
    sweep = engine.serve(requests, max_batch_size=4, return_outputs=False)
    print(f"\nserving: {sweep.num_requests} requests in "
          f"{sweep.num_batches} batches on {sweep.pool_size} devices — "
          f"{sweep.throughput_rps:,.0f} req/s, "
          f"cache misses {sweep.cache_misses} "
          f"(the program was already compiled in step 1)")


if __name__ == "__main__":
    main()

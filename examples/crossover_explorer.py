#!/usr/bin/env python
"""Performance-model explorer: where GEMM / SpDMM / SPMM win (§VI-A).

Evaluates the Table IV analytical model over a density grid and prints
the optimal-primitive map with its closed-form region boundaries
(alpha_min = 1/2 and alpha_max = 2/psys), then cross-checks a few points
against the cycle-exact simulator units.
"""

import numpy as np
import scipy.sparse as sp

from repro import u250_default
from repro.hw.gemm_unit import gemm_compute_cycles
from repro.hw.spdmm_unit import spdmm_compute_cycles
from repro.hw.spmm_unit import spmm_compute_cycles
from repro.runtime.perf_model import PerformanceModel, region_primitive

CFG = u250_default()
GLYPH = {"GEMM": "G", "SpDMM": "D", "SPMM": "S"}


def main() -> None:
    pm = PerformanceModel(CFG)
    print(f"psys = {CFG.psys}; crossovers: {pm.crossover_densities()}\n")

    densities = np.geomspace(0.002, 1.0, 24)
    print("optimal primitive over (alpha_x [rows], alpha_y [cols]); "
          "G=GEMM D=SpDMM S=SPMM")
    header = "        " + "".join(f"{d:>5.2f}"[-5:] for d in densities[::4])
    print(header)
    for ax in densities:
        line = "".join(
            GLYPH[region_primitive(ax, ay, CFG).value] for ay in densities
        )
        print(f"ax={ax:5.3f} {line}")

    print("\ncycle-exact cross-check at N=256 partitions:")
    n = 256
    rng = np.random.default_rng(0)
    for ax, ay in [(0.8, 0.9), (0.02, 0.9), (0.02, 0.05)]:
        x = sp.random(n, n, density=ax, format="csr", dtype=np.float32, rng=rng)
        y = sp.random(n, n, density=ay, format="csr", dtype=np.float32, rng=rng)
        gemm = gemm_compute_cycles(n, n, n, CFG)
        spdmm = spdmm_compute_cycles(min(x.nnz, y.nnz), n, CFG)
        spmm, _ = spmm_compute_cycles(x, y, CFG)
        best = min(("GEMM", gemm), ("SpDMM", spdmm), ("SPMM", spmm),
                   key=lambda t: t[1])
        rule = region_primitive(ax, ay, CFG).value
        print(f"  a=({ax:.2f},{ay:.2f}): GEMM={gemm:>7} SpDMM={spdmm:>7} "
              f"SPMM={spmm:>7} | simulator best={best[0]:<6} rule={rule}")


if __name__ == "__main__":
    main()

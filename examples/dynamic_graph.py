#!/usr/bin/env python
"""Dynamic graphs: mutate a served graph and patch the compiled program.

Walkthrough of the `repro.dyngraph` subsystem:

1. wrap a dataset in a `MutableGraph` and compile it through the
   `Engine` facade;
2. apply a batched edge/feature delta via `engine.mutate` and inspect
   its exact effect;
3. verify the patched program's inference output is bit-identical to a
   from-scratch compile of the mutated graph;
4. trigger the patcher's recompile fallback with an oversized delta;
5. serve an interleaved infer/mutate stream with patch-instead-of-evict
   and compare against the evict policy.
"""

import time

import numpy as np

from repro import Compiler, Engine, init_weights, load_dataset
from repro.dyngraph import (
    GraphDelta,
    MutableGraph,
    PatchPolicy,
    ProgramPatcher,
    random_delta,
    warm_views,
)
from repro.runtime.executor import run_strategy
from repro.serve import InferenceServer, churn_stream


def main() -> None:
    # 1. a mutable graph: versioned, immutable snapshots ----------------
    engine = Engine()
    graph = MutableGraph(load_dataset("CO"), graph_id="cora-live")
    print(f"graph: {graph}")

    handle = engine.compile("GCN", graph, seed=0)
    warm_views(handle.program)  # materialise the per-block density tables

    # 2. a batched mutation: edge churn + a feature write ---------------
    delta = GraphDelta.edges(
        inserts=[(0, 5), (7, 9, 0.5)],      # (row, col[, weight])
        deletes=[(1, 2)],
        features=[(3, 10, 1.25)],           # H0[3, 10] = 1.25
    )
    report = engine.mutate(handle, delta)
    applied = graph.log[-1]
    print(f"\napplied: {applied}")
    print(f"  touched vertices: {applied.touched_vertices.tolist()}")
    print(f"  nnz(A) delta: {applied.a_nnz_delta:+d}, "
          f"nnz(H0) delta: {applied.h_nnz_delta:+d}")

    # 3. the handle now holds the patched program: prove exactness ------
    print(f"\npatch: {report.wall_s * 1e3:.2f} ms wall "
          f"({report.dirty_blocks} dirty blocks, "
          f"{report.reanalyzed_pairs} K2P re-decisions, "
          f"{report.decision_flips} flips)")

    weights = init_weights(handle.model, seed=0)
    t0 = time.perf_counter()
    fresh = Compiler().compile(handle.model, graph.snapshot(), weights)
    warm_views(fresh)
    print(f"full recompile for comparison: "
          f"{(time.perf_counter() - t0) * 1e3:.2f} ms wall")

    out_patched = engine.infer(handle, strategy="Dynamic").output_dense()
    out_fresh = run_strategy(fresh, "Dynamic").output_dense()
    assert np.array_equal(out_patched, out_fresh)
    print("patched inference output == from-scratch compile (bit-exact)")

    # 4. the fallback heuristic -----------------------------------------
    big = random_delta(graph.num_vertices, graph.snapshot().num_features,
                       edge_inserts=400, edge_deletes=400, seed=1)
    applied = graph.apply(big)
    strict = ProgramPatcher(PatchPolicy(max_edge_fraction=0.01))
    _, report = strict.patch(handle.program, graph.snapshot(), applied)
    print(f"\noversized delta -> patched={report.patched} "
          f"(reason: {report.reason})")

    # 5. serving under churn: patch vs evict ----------------------------
    print("\nserving an interleaved infer/mutate stream:")
    for policy in ("patch", "evict"):
        live = MutableGraph(load_dataset("CO"), graph_id="cora-churn")
        server = InferenceServer(pool_size=2, max_batch_size=4,
                                 return_outputs=False,
                                 mutation_policy=policy)
        server.register_graph(live)
        stream = churn_stream(40, graph=live, models=("GCN",),
                              mutation_every=5, edge_fraction=0.01,
                              rate_rps=10_000.0, seed=7)
        r = server.serve(stream)
        print(f"  {policy:>5}: {r.throughput_rps:>9,.0f} req/s, "
              f"p95 {r.latency_p95_s * 1e3:.3f} ms, "
              f"hit rate {r.cache_hit_rate * 100:.0f}%, "
              f"compile {r.compile_s * 1e3:.1f} ms, "
              f"patch {r.patch_s * 1e3:.1f} ms")


if __name__ == "__main__":
    main()

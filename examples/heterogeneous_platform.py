#!/usr/bin/env python
"""Heterogeneous execution (§IX future work): CPU + GPU + FPGA.

Prices the paper's proposed heterogeneous platform — GEMM-mapped pairs on
a GPU model, SpDMM/SPMM on the simulated FPGA, K2P control flow on the
host — against FPGA-only execution, across the dataset sparsity spectrum.
"""

from repro import Engine
from repro.harness import format_table, speedup_fmt

CONFIGS = [("CI", 0.5), ("PU", 0.5), ("FL", 0.1), ("RE", 0.02)]


def main() -> None:
    engine = Engine()
    # the "hetero" backend prices GEMM pairs on the GPU model and sparse
    # pairs on the FPGA; its runtime also offers the FPGA-only baseline
    rt = engine.backend("hetero").runtime
    rows = []
    for ds, scale in CONFIGS:
        handle = engine.compile("GCN", ds, scale=scale, seed=0)
        het = engine.infer(handle, backend="hetero")
        fpga = rt.run_fpga_only(handle.program)
        rows.append([
            f"{ds} (x{scale})",
            f"{fpga.latency_ms:.4f}",
            f"{het.latency_ms:.4f}",
            speedup_fmt(fpga.total_seconds / het.total_seconds),
            het.device_pairs.get("GPU", 0),
            het.device_pairs.get("FPGA", 0),
        ])
    print(format_table(
        ["dataset", "FPGA-only (ms)", "CPU+GPU+FPGA (ms)", "gain",
         "GPU pairs", "FPGA pairs"],
        rows,
        title="Heterogeneous platform (paper SIX): who benefits?",
    ))
    print("\nDense-feature graphs (Reddit) route their GEMM work to the "
          "GPU and win;\nsparse graphs stay on the FPGA — the value of "
          "heterogeneity is itself sparsity-dependent.")


if __name__ == "__main__":
    main()

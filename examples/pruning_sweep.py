#!/usr/bin/env python
"""Pruned-model sweep: how weight sparsity changes the optimal mapping.

Prunes a GCN's weight matrices to increasing sparsities (as in §VIII-B /
Fig. 11-12), runs all three strategies at each point, and shows the
Dynamic mapping's speedup growing with sparsity — static mappings cannot
exploit pruning at all (S1) or only partially (S2).
"""

from repro import Engine
from repro.harness import format_table, speedup_fmt
from repro.hw.report import Primitive

SPARSITIES = (0.0, 0.3, 0.5, 0.7, 0.9, 0.95)


def main() -> None:
    engine = Engine()

    rows = []
    for sparsity in SPARSITIES:
        handle = engine.compile("GCN", "CI", seed=0, prune=sparsity)
        res = {
            strat: engine.infer(handle, strategy=strat)
            for strat in ("S1", "S2", "Dynamic")
        }
        dyn = res["Dynamic"]
        prims = dyn.primitive_totals
        rows.append([
            f"{sparsity * 100:.0f}%",
            f"{dyn.latency_ms * 1e3:.1f}",
            speedup_fmt(res["S1"].total_cycles / dyn.total_cycles),
            speedup_fmt(res["S2"].total_cycles / dyn.total_cycles),
            prims.get(Primitive.SKIP, 0),
            prims.get(Primitive.SPMM, 0),
            prims.get(Primitive.SPDMM, 0),
            prims.get(Primitive.GEMM, 0),
        ])
    print(format_table(
        ["weight sparsity", "Dynamic (us)", "SO-S1", "SO-S2",
         "skipped", "SPMM", "SpDMM", "GEMM"],
        rows,
        title="GCN on CiteSeer: pruning sweep (Fig. 11/12 at example scale)",
    ))
    print("\nAs sparsity rises, the Analyzer shifts pairs toward cheaper "
          "primitives and skips empty partitions; static mappings cannot.")


if __name__ == "__main__":
    main()

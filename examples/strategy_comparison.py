#!/usr/bin/env python
"""Strategy comparison: Dynamic vs the S1/S2 static mappings (mini Table VII).

Runs all four GNN models on three datasets under the three mapping
strategies the paper compares, and prints latency plus the SO-S1 / SO-S2
speedups.  This is the headline experiment of the paper at example scale.
"""

from repro import Engine
from repro.harness import format_table, geomean, sci, speedup_fmt

DATASETS = ("CI", "CO", "PU")
MODELS = ("GCN", "GraphSAGE", "GIN", "SGC")


def main() -> None:
    engine = Engine()
    all_s1, all_s2 = [], []
    for model_name in MODELS:
        rows = []
        for ds in DATASETS:
            handle = engine.compile(model_name, ds, seed=0)
            res = {
                strat: engine.infer(handle, strategy=strat)
                for strat in ("S1", "S2", "Dynamic")
            }
            so_s1 = res["S1"].total_cycles / res["Dynamic"].total_cycles
            so_s2 = res["S2"].total_cycles / res["Dynamic"].total_cycles
            all_s1.append(so_s1)
            all_s2.append(so_s2)
            rows.append([
                ds,
                sci(res["S1"].latency_ms),
                sci(res["S2"].latency_ms),
                sci(res["Dynamic"].latency_ms),
                speedup_fmt(so_s1),
                speedup_fmt(so_s2),
            ])
        print(format_table(
            ["dataset", "S1 (ms)", "S2 (ms)", "Dynamic (ms)", "SO-S1", "SO-S2"],
            rows, title=f"\n=== {model_name} ===",
        ))
    print(f"\ngeomean SO-S1 = {geomean(all_s1):.2f}x   "
          f"geomean SO-S2 = {geomean(all_s2):.2f}x   "
          f"(paper: 2.13x / 1.59x)")


if __name__ == "__main__":
    main()

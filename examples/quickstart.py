#!/usr/bin/env python
"""Quickstart: run GCN inference on a Cora-like graph with dynamic K2P mapping.

Builds a 2-layer GCN, compiles it for the simulated Alveo U250
accelerator, runs the Dynasparse runtime with dynamic kernel-to-primitive
mapping, verifies the output against the NumPy reference, and prints the
latency breakdown and the primitive decisions the Analyzer made.
"""

import numpy as np

from repro import (
    Accelerator,
    Compiler,
    RuntimeSystem,
    build_model,
    init_weights,
    load_dataset,
    make_strategy,
    reference_inference,
)


def main() -> None:
    # 1. load a dataset (seeded synthetic equivalent of Cora, Table VI)
    data = load_dataset("CO")
    print(f"dataset: {data}")

    # 2. define the model, PyG-style dims: features -> hidden -> classes
    model = build_model("GCN", data.num_features, data.hidden_dim,
                        data.num_classes)
    weights = init_weights(model, seed=0)

    # 3. compile: IR generation, Algorithm 9 partitioning, sparsity profiling
    program = Compiler().compile(model, data, weights)
    print(program.describe())
    print(f"compile time: {program.timings.total_ms:.2f} ms\n")

    # 4. execute on the simulated accelerator with dynamic K2P mapping
    acc = Accelerator(program.config)
    runtime = RuntimeSystem(acc, make_strategy("Dynamic", acc.config))
    result = runtime.run(program)

    # 5. verify against the reference implementation
    ref = reference_inference(model, data.a, data.h0, weights)
    err = np.abs(result.output_dense() - ref).max()
    print(f"accelerator latency : {result.latency_ms * 1e3:.1f} us")
    print(f"runtime overhead    : {result.overhead_fraction * 100:.1f}% (hidden)")
    print(f"max |output - ref|  : {err:.2e}")
    print(f"primitive decisions : "
          f"{ {p.value: c for p, c in result.primitive_totals.items()} }")
    print("\nper-kernel breakdown:")
    for ks in result.kernel_stats:
        prims = {p.value: c for p, c in ks.primitive_counts.items()}
        print(f"  {ks.kernel_id:18s} {ks.cycles:>10.0f} cycles  "
              f"tasks={ks.num_tasks:<4d} out density={ks.out_density:.3f}  {prims}")


if __name__ == "__main__":
    main()

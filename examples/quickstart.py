#!/usr/bin/env python
"""Quickstart: run GCN inference on a Cora-like graph with dynamic K2P mapping.

Builds a 2-layer GCN, compiles it for the simulated Alveo U250
accelerator through the :class:`repro.Engine` facade, runs the Dynasparse
runtime with dynamic kernel-to-primitive mapping, verifies the output
against the NumPy reference, and prints the latency breakdown and the
primitive decisions the Analyzer made.
"""

import numpy as np

from repro import Engine, init_weights, load_dataset, reference_inference


def main() -> None:
    # 1. load a dataset (seeded synthetic equivalent of Cora, Table VI)
    data = load_dataset("CO")
    print(f"dataset: {data}")

    # 2+3. compile: model building, IR generation, Algorithm 9
    # partitioning, sparsity profiling — one facade call, cached per
    # (model, graph, config) fingerprint
    engine = Engine()
    handle = engine.compile("GCN", data, seed=0)
    print(handle.program.describe())
    print(f"compile time: {handle.program.timings.total_ms:.2f} ms\n")

    # 4. execute on the simulated accelerator with dynamic K2P mapping
    result = engine.infer(handle, strategy="Dynamic")

    # 5. verify against the reference implementation
    weights = init_weights(handle.model, seed=0)
    ref = reference_inference(handle.model, data.a, data.h0, weights)
    err = np.abs(result.output_dense() - ref).max()
    print(f"accelerator latency : {result.latency_ms * 1e3:.1f} us")
    print(f"runtime overhead    : {result.overhead_fraction * 100:.1f}% (hidden)")
    print(f"max |output - ref|  : {err:.2e}")
    print(f"primitive decisions : "
          f"{ {p.value: c for p, c in result.primitive_totals.items()} }")
    print("\nper-kernel breakdown:")
    for ks in result.kernel_stats:
        prims = {p.value: c for p, c in ks.primitive_counts.items()}
        print(f"  {ks.kernel_id:18s} {ks.cycles:>10.0f} cycles  "
              f"tasks={ks.num_tasks:<4d} out density={ks.out_density:.3f}  {prims}")


if __name__ == "__main__":
    main()
